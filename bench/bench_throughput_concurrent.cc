// Concurrent query throughput — queries/sec vs executor worker count,
// with and without the query front door.
//
// Not a paper figure: the paper evaluates one query at a time, but the
// production north star is a stream of s-/m-queries from many clients.
// This bench plans a fixed mixed workload once, then executes it through
// QueryExecutor::ExecuteBatch under three front-door modes:
//   * none  — PR 1's raw fan-out (the scaling baseline);
//   * cache — result cache enabled, one cold fill + timed warm runs, so
//     the hit-rate column shows what hot-spot traffic costs after the
//     front door absorbs it;
//   * admit — admission control with capacity below the batch size, so
//     the shed-rate column shows typed load shedding instead of unbounded
//     queueing.
// Results are checked bit-identical across worker counts and modes
// (threading and caching must never change a region); shed plans are
// excluded (they return ResourceExhausted by design).
//
// Set STRR_BENCH_JSON=<path> to also record the rows as JSON — the
// committed BENCH_throughput.json baseline is produced this way.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/query_executor.h"
#include "query/query_plan.h"
#include "util/stopwatch.h"

using namespace strr;         // NOLINT
using namespace strr::bench;  // NOLINT

namespace {

/// The fixed workload: a ring of s-queries around downtown at staggered
/// rush-hour start times, plus every 8th query an m-query (3 locations,
/// repeated-s strategy so its legs can exploit intra-query parallelism).
std::vector<QueryPlan> PlanWorkload(const BenchStack& stack, int n) {
  const QueryPlanner& planner = stack.engine->planner();
  Mbr box = stack.dataset.network.BoundingBox();
  std::vector<QueryPlan> plans;
  plans.reserve(n);
  for (int i = 0; plans.size() < static_cast<size_t>(n); ++i) {
    double angle = 2.0 * M_PI * (i % 16) / 16.0;
    double rx = box.Width() * 0.10 * (1 + i % 3);
    double ry = box.Height() * 0.10 * (1 + (i / 3) % 3);
    XyPoint p{stack.dataset.center.x + std::cos(angle) * rx,
              stack.dataset.center.y + std::sin(angle) * ry};
    int64_t tod = HMS(9 + (i % 4), 15 * (i % 4));
    if (i % 8 == 7) {
      MQuery m;
      m.locations = {stack.query_location, p,
                     {stack.dataset.center.x - std::cos(angle) * rx,
                      stack.dataset.center.y - std::sin(angle) * ry}};
      m.start_tod = tod;
      m.duration = 600;
      m.prob = 0.2;
      auto plan = planner.PlanMQuery(m, QueryStrategy::kRepeatedS);
      if (plan.ok()) plans.push_back(std::move(plan).value());
      continue;
    }
    SQuery q{p, tod, 600 + 300 * (i % 3), 0.1 + 0.1 * (i % 3)};
    auto plan = planner.PlanSQuery(q);
    if (plan.ok()) plans.push_back(std::move(plan).value());
  }
  return plans;
}

struct RowResult {
  int workers = 0;
  std::string mode;
  double batch_ms = 0.0;
  double qps = 0.0;
  double hit_rate = 0.0;
  double shed_rate = 0.0;
  bool identical = true;
};

}  // namespace

int main() {
  auto maybe_stack = LoadBenchStack();
  if (!maybe_stack.ok()) {
    std::fprintf(stderr, "FATAL: %s\n",
                 maybe_stack.status().ToString().c_str());
    return 1;
  }
  BenchStack& stack = **maybe_stack;

  const int kQueries = 64;
  std::vector<QueryPlan> plans = PlanWorkload(stack, kQueries);
  std::fprintf(stderr, "# workload: %zu plans\n", plans.size());

  // Warm-up on one worker: materializes the lazy Con-Index tables and the
  // page cache so every measured run sees the same warm engine, and
  // provides the reference regions for the identity check.
  auto reference_exec = stack.engine->MakeExecutor({.num_threads = 1});
  auto reference = reference_exec->ExecuteBatch(plans);
  for (size_t i = 0; i < reference.size(); ++i) {
    if (!reference[i].ok()) {
      std::fprintf(stderr, "FATAL: plan %zu: %s\n", i,
                   reference[i].status().ToString().c_str());
      return 1;
    }
  }

  std::vector<RowResult> rows;
  // Runs one config: median of three timed batches, hit/shed rates from
  // the executor's front-door counters over the timed window.
  auto run_config = [&](int workers, const std::string& mode,
                        const QueryExecutorOptions& opt,
                        bool allow_shed) -> RowResult {
    auto executor = stack.engine->MakeExecutor(opt);
    if (mode == "cache") {
      // Cold fill outside the timing: the hot-spot scenario is a steady
      // stream of repeats over an already-warm front door.
      auto cold = executor->ExecuteBatch(plans);
      (void)cold;
    }
    QueryExecutor::FrontDoorStats before = executor->front_door_stats();
    std::vector<double> times;
    bool identical = true;
    size_t shed = 0, served = 0;
    for (int run = 0; run < 3; ++run) {
      Stopwatch watch;
      auto results = executor->ExecuteBatch(plans);
      times.push_back(watch.ElapsedMillis());
      for (size_t i = 0; i < results.size(); ++i) {
        if (!results[i].ok()) {
          if (allow_shed && results[i].status().IsResourceExhausted()) {
            ++shed;
            continue;
          }
          identical = false;
          continue;
        }
        ++served;
        if (results[i]->segments != reference[i]->segments) identical = false;
      }
    }
    QueryExecutor::FrontDoorStats after = executor->front_door_stats();
    std::sort(times.begin(), times.end());
    RowResult row;
    row.workers = workers;
    row.mode = mode;
    row.batch_ms = times[1];
    // qps counts only *served* queries: shed plans return in microseconds
    // and would otherwise inflate the admit-mode throughput ~8x.
    double served_per_run = static_cast<double>(served) / 3.0;
    row.qps = served_per_run / (row.batch_ms / 1000.0);
    uint64_t hits = after.cache_hits - before.cache_hits;
    uint64_t misses = after.cache_misses - before.cache_misses;
    row.hit_rate = (hits + misses) > 0
                       ? static_cast<double>(hits) / (hits + misses)
                       : 0.0;
    row.shed_rate = (shed + served) > 0
                        ? static_cast<double>(shed) / (shed + served)
                        : 0.0;
    row.identical = identical;
    return row;
  };

  std::printf("Concurrent throughput: %zu mixed s-/m-queries per batch\n",
              plans.size());
  PrintRow({"workers", "mode", "batch_ms", "qps", "speedup", "hit_rate",
            "shed_rate", "identical"});
  double qps1 = 0.0, qps4 = 0.0, qps4_cache = 0.0;
  for (int workers : {1, 2, 4, 8}) {
    for (const char* mode : {"none", "cache"}) {
      QueryExecutorOptions opt;
      opt.num_threads = workers;
      if (std::string(mode) == "cache") opt.result_cache_entries = 4096;
      RowResult row = run_config(workers, mode, opt, /*allow_shed=*/false);
      if (workers == 1 && row.mode == "none") qps1 = row.qps;
      if (workers == 4 && row.mode == "none") qps4 = row.qps;
      if (workers == 4 && row.mode == "cache") qps4_cache = row.qps;
      PrintRow({std::to_string(row.workers), row.mode, Cell(row.batch_ms, 1),
                Cell(row.qps, 1), Cell(qps1 > 0 ? row.qps / qps1 : 0.0, 2),
                Cell(row.hit_rate, 2), Cell(row.shed_rate, 2),
                row.identical ? "yes" : "NO"});
      if (!row.identical) {
        std::fprintf(stderr,
                     "FATAL: results diverged at %d workers (mode %s)\n",
                     workers, mode);
        return 1;
      }
      rows.push_back(row);
    }
  }
  {
    // Admission demo: capacity far below the batch size -> typed shedding.
    QueryExecutorOptions opt;
    opt.num_threads = 4;
    opt.max_inflight = 8;
    opt.max_queued = 8;
    opt.batch_share = 1.0;
    RowResult row = run_config(4, "admit", opt, /*allow_shed=*/true);
    PrintRow({std::to_string(row.workers), row.mode, Cell(row.batch_ms, 1),
              Cell(row.qps, 1), Cell(qps1 > 0 ? row.qps / qps1 : 0.0, 2),
              Cell(row.hit_rate, 2), Cell(row.shed_rate, 2),
              row.identical ? "yes" : "NO"});
    if (!row.identical) {
      std::fprintf(stderr, "FATAL: admitted results diverged\n");
      return 1;
    }
    rows.push_back(row);
  }

  bool scale_ok = qps4 >= 2.0 * qps1;
  ShapeCheck("throughput_scales_with_workers", scale_ok,
             "4-worker qps " + Cell(qps4, 1) + " vs 1-worker " +
                 Cell(qps1, 1) + " (>=2x expected on >=4 cores; this host has " +
                 std::to_string(std::thread::hardware_concurrency()) +
                 " hardware threads)");
  RowResult* cache4 = nullptr;
  for (RowResult& r : rows) {
    if (r.workers == 4 && r.mode == "cache") cache4 = &r;
  }
  bool cache_ok = cache4 != nullptr && cache4->hit_rate > 0.0 &&
                  qps4_cache >= qps4;
  ShapeCheck("cache_absorbs_hot_spot_repeats", cache_ok,
             "4-worker warm hit rate " +
                 Cell(cache4 ? cache4->hit_rate : 0.0, 2) + ", cached qps " +
                 Cell(qps4_cache, 1) + " vs uncached " + Cell(qps4, 1));
  RowResult& admit = rows.back();
  ShapeCheck("admission_sheds_over_capacity_typed", admit.shed_rate > 0.0,
             "shed rate " + Cell(admit.shed_rate, 2) +
                 " with capacity 8 against a 64-plan batch");

  if (const char* json_path = std::getenv("STRR_BENCH_JSON")) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"throughput_concurrent\",\n");
    std::fprintf(f, "  \"queries_per_batch\": %zu,\n", plans.size());
    std::fprintf(f, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const RowResult& r = rows[i];
      std::fprintf(f,
                   "    {\"workers\": %d, \"mode\": \"%s\", \"batch_ms\": "
                   "%.2f, \"qps\": %.1f, \"hit_rate\": %.3f, \"shed_rate\": "
                   "%.3f, \"identical\": %s}%s\n",
                   r.workers, r.mode.c_str(), r.batch_ms, r.qps, r.hit_rate,
                   r.shed_rate, r.identical ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "# wrote %s\n", json_path);
  }
  return 0;
}
