// Concurrent query throughput — queries/sec vs executor worker count,
// with and without the query front door.
//
// Not a paper figure: the paper evaluates one query at a time, but the
// production north star is a stream of s-/m-queries from many clients.
// This bench plans a fixed mixed workload once, then executes it through
// QueryExecutor::ExecuteBatch under three front-door modes:
//   * none  — PR 1's raw fan-out (the scaling baseline);
//   * cache — result cache enabled, one cold fill + timed warm runs, so
//     the hit-rate column shows what hot-spot traffic costs after the
//     front door absorbs it;
//   * admit — admission control with capacity below the batch size, so
//     the shed-rate column shows typed load shedding instead of unbounded
//     queueing.
// Results are checked bit-identical across worker counts and modes
// (threading and caching must never change a region); shed plans are
// excluded (they return ResourceExhausted by design).
//
// A multi-tenant sweep exercises the WFQ front door (tenant_fairness):
// 2-4 tenants with skewed weights saturate a small ticket pool from
// closed-loop client threads; columns show total qps, each tenant's
// observed completion share vs its weight share, and the max relative
// deviation — the fairness number the CI regression gate tracks.
//
// A second sweep measures the live ingestion subsystem (live/): queries
// stream against snapshot-pinned indexes while an ObservationIngestor
// feeds 0 / 100 / 1000 speed observations per second — columns show qps,
// p99 latency, and ingest staleness (ms from Offer to published
// snapshot). The feed samples covered profile cells (a probe-vehicle
// feed reports from roads that have traffic), so extreme statistics
// saturate realistically and most publishes are quiet.
//
// A third sweep measures the sharded serving tier (shard/): closed-loop
// clients replay the workload through a ShardCoordinator at 1 / 2 / 4
// engine shards (one query + one slice thread each, so throughput gains
// come from the partition alone) — columns show qps, p99, and the
// fraction of queries whose region crossed shards. Every sharded answer
// is checked bit-identical to the unsharded reference.
//
// A fourth sweep measures the storage engine (storage/checkpoint/): the
// same acked observation stream is journaled twice — once bare, once
// with profile checkpointing — and cold restart (Recover + Replay into a
// fresh LiveProfileManager) is timed for both; a compaction config
// reports sealed-table count before/after background merges; and the
// block cache is driven through a scan-polluted hot-set workload under
// LRU vs TinyLFU. check_regression.py gates the checkpointed restart
// against the full-replay wall with a speedup floor.
// STRR_STORAGE_DISABLE_CHECKPOINT=1 skips committing the checkpoint (the
// gate's negative test: the speedup collapses to ~1x and the floor must
// catch it).
//
// Set STRR_BENCH_JSON=<path> to also record the rows as JSON — the
// committed BENCH_throughput.json baseline is produced this way.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/query_executor.h"
#include "live/epoch_manager.h"
#include "live/live_profile_manager.h"
#include "live/observation_ingestor.h"
#include "live/observation_journal.h"
#include "live/recovery_manager.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/query_plan.h"
#include "shard/shard_coordinator.h"
#include "shard/shard_options.h"
#include "storage/buffer_pool.h"
#include "storage/file_manager.h"
#include "tools/crash_stream.h"
#include "traj/fleet_simulator.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace strr;         // NOLINT
using namespace strr::bench;  // NOLINT

namespace {

/// The fixed workload: a ring of s-queries around downtown at staggered
/// rush-hour start times, plus every 8th query an m-query (3 locations,
/// repeated-s strategy so its legs can exploit intra-query parallelism).
std::vector<QueryPlan> PlanWorkload(const BenchStack& stack, int n) {
  const QueryPlanner& planner = stack.engine->planner();
  Mbr box = stack.dataset.network.BoundingBox();
  std::vector<QueryPlan> plans;
  plans.reserve(n);
  for (int i = 0; plans.size() < static_cast<size_t>(n); ++i) {
    double angle = 2.0 * M_PI * (i % 16) / 16.0;
    double rx = box.Width() * 0.10 * (1 + i % 3);
    double ry = box.Height() * 0.10 * (1 + (i / 3) % 3);
    XyPoint p{stack.dataset.center.x + std::cos(angle) * rx,
              stack.dataset.center.y + std::sin(angle) * ry};
    int64_t tod = HMS(9 + (i % 4), 15 * (i % 4));
    if (i % 8 == 7) {
      MQuery m;
      m.locations = {stack.query_location, p,
                     {stack.dataset.center.x - std::cos(angle) * rx,
                      stack.dataset.center.y - std::sin(angle) * ry}};
      m.start_tod = tod;
      m.duration = 600;
      m.prob = 0.2;
      auto plan = planner.PlanMQuery(m, QueryStrategy::kRepeatedS);
      if (plan.ok()) plans.push_back(std::move(plan).value());
      continue;
    }
    SQuery q{p, tod, 600 + 300 * (i % 3), 0.1 + 0.1 * (i % 3)};
    auto plan = planner.PlanSQuery(q);
    if (plan.ok()) plans.push_back(std::move(plan).value());
  }
  return plans;
}

struct RowResult {
  int workers = 0;
  std::string mode;
  double batch_ms = 0.0;
  double qps = 0.0;
  double hit_rate = 0.0;
  double shed_rate = 0.0;
  bool identical = true;
};

struct TenantRow {
  int tenants = 0;
  std::string weights;          ///< "1:2:4" style config label
  std::string shares;           ///< observed completion shares, same order
  double qps = 0.0;             ///< total completions/sec in the window
  /// Max over tenants of |observed share - weight share| / weight share.
  double max_weight_err = 0.0;
  bool no_starvation = true;    ///< every tenant completed > 0 queries
};

struct LiveRow {
  int rate = 0;  ///< observations offered per second
  double qps = 0.0;
  // Latency percentiles from an obs::Histogram over per-query wall µs —
  // the same log-linear-bucket estimator the Prometheus surface exports,
  // so the bench column and a production scrape agree by construction.
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double staleness_ms = 0.0;  ///< mean Offer -> published-snapshot delay
  uint64_t versions = 0;      ///< snapshots published during the window
  uint64_t slots_invalidated = 0;
  bool identical = true;  ///< checked against reference at rate 0 only
};

struct ShardRow {
  int shards = 0;   ///< engine shards in the coordinator (1 = serialized)
  int workers = 0;  ///< closed-loop client threads driving Execute
  double qps = 0.0;
  double p99_ms = 0.0;
  /// Fraction of routed queries whose mined region crossed out of the
  /// home shard's partition — how much of the workload actually exercised
  /// the scatter-gather path vs being shard-local.
  double cross_shard_fraction = 0.0;
  bool identical = true;  ///< bit-identical to the unsharded reference
};

struct StorageRow {
  /// "replay" / "checkpoint" — cold-restart configs over the same acked
  /// stream; "compaction" — table-count shrink; "block_cache_lru" /
  /// "block_cache_tinylfu" — page-cache policies under a scan-polluted
  /// hot-set workload.
  std::string config;
  double restart_ms = -1.0;  ///< best-of-3 Recover+Replay wall (-1 = n/a)
  uint64_t replayed_batches = 0;  ///< batches folded beyond the checkpoint
  int64_t tables_before = -1;     ///< compaction: sealed tables flushed
  int64_t tables_after = -1;      ///< compaction: live tables after merges
  double hit_rate = -1.0;         ///< block-cache rows (-1 = n/a)
  uint64_t admission_rejects = 0;  ///< TinyLFU pages denied a frame
};

}  // namespace

int main() {
  auto maybe_stack = LoadBenchStack();
  if (!maybe_stack.ok()) {
    std::fprintf(stderr, "FATAL: %s\n",
                 maybe_stack.status().ToString().c_str());
    return 1;
  }
  BenchStack& stack = **maybe_stack;

  const int kQueries = 64;
  std::vector<QueryPlan> plans = PlanWorkload(stack, kQueries);
  std::fprintf(stderr, "# workload: %zu plans\n", plans.size());

  // Warm-up on one worker: materializes the lazy Con-Index tables and the
  // page cache so every measured run sees the same warm engine, and
  // provides the reference regions for the identity check.
  auto reference_exec = stack.engine->MakeExecutor({.num_threads = 1});
  auto reference = reference_exec->ExecuteBatch(plans);
  for (size_t i = 0; i < reference.size(); ++i) {
    if (!reference[i].ok()) {
      std::fprintf(stderr, "FATAL: plan %zu: %s\n", i,
                   reference[i].status().ToString().c_str());
      return 1;
    }
  }

  std::vector<RowResult> rows;
  // Runs one config: best-of-N timed batches (N adapts so the timed
  // window covers >= ~1.2 s — at small scale a median-of-3 over ~50 ms
  // batches is ±10% run-to-run, which would flake the 5% obs-overhead
  // gate; the minimum is robust because scheduling noise only ever adds
  // time), hit/shed rates from the executor's front-door counters over
  // the timed window.
  auto run_config = [&](int workers, const std::string& mode,
                        const QueryExecutorOptions& opt,
                        bool allow_shed) -> RowResult {
    auto executor = stack.engine->MakeExecutor(opt);
    // "obs" = the "none" configuration with the full observability stack
    // on: metrics recording at every instrumented site, every query
    // traced into the flight recorder, and a Prometheus scrape inside
    // each timed run (a scrape concurrent with traffic is the production
    // shape). The identical check below then proves knobs-on queries are
    // bit-identical, and check_regression.py gates obs-vs-none qps.
    const bool obs_on = mode == "obs";
    if (obs_on) {
      obs::MetricsRegistry::Global().set_enabled(true);
      obs::Tracer::Global().Configure({.sample_n = 1,
                                       .flight_recorder_events = 4096,
                                       .slow_query_ms = 0.0});
    }
    if (mode == "cache") {
      // Cold fill outside the timing: the hot-spot scenario is a steady
      // stream of repeats over an already-warm front door.
      auto cold = executor->ExecuteBatch(plans);
      (void)cold;
    }
    QueryExecutor::FrontDoorStats before = executor->front_door_stats();
    std::vector<double> times;
    bool identical = true;
    size_t shed = 0, served = 0;
    double total_ms = 0.0;
    while ((times.size() < 3 || total_ms < 1200.0) && times.size() < 15) {
      Stopwatch watch;
      auto results = executor->ExecuteBatch(plans);
      if (obs_on) {
        std::string scrape;
        obs::MetricsRegistry::Global().DumpPrometheus(&scrape);
        if (scrape.empty()) identical = false;  // scrape must produce text
      }
      times.push_back(watch.ElapsedMillis());
      total_ms += times.back();
      for (size_t i = 0; i < results.size(); ++i) {
        if (!results[i].ok()) {
          if (allow_shed && results[i].status().IsResourceExhausted()) {
            ++shed;
            continue;
          }
          identical = false;
          continue;
        }
        ++served;
        if (results[i]->segments != reference[i]->segments) identical = false;
      }
    }
    QueryExecutor::FrontDoorStats after = executor->front_door_stats();
    std::sort(times.begin(), times.end());
    RowResult row;
    row.workers = workers;
    row.mode = mode;
    row.batch_ms = times.front();
    // qps counts only *served* queries: shed plans return in microseconds
    // and would otherwise inflate the admit-mode throughput ~8x.
    double served_per_run =
        static_cast<double>(served) / static_cast<double>(times.size());
    row.qps = served_per_run / (row.batch_ms / 1000.0);
    uint64_t hits = after.cache_hits - before.cache_hits;
    uint64_t misses = after.cache_misses - before.cache_misses;
    row.hit_rate = (hits + misses) > 0
                       ? static_cast<double>(hits) / (hits + misses)
                       : 0.0;
    row.shed_rate = (shed + served) > 0
                        ? static_cast<double>(shed) / (shed + served)
                        : 0.0;
    row.identical = identical;
    if (obs_on) {
      // Leave the process exactly as the other modes see it.
      obs::Tracer::Global().Disable();
      obs::MetricsRegistry::Global().set_enabled(false);
      obs::MetricsRegistry::Global().ResetValues();
    }
    return row;
  };

  std::printf("Concurrent throughput: %zu mixed s-/m-queries per batch\n",
              plans.size());
  PrintRow({"workers", "mode", "batch_ms", "qps", "speedup", "hit_rate",
            "shed_rate", "identical"});
  double qps1 = 0.0, qps4 = 0.0, qps4_cache = 0.0;
  for (int workers : {1, 2, 4, 8}) {
    // "obs" rows only at 1 and 4 workers: enough to gate the overhead at
    // both the sequential and the scaled shape without doubling the sweep.
    std::vector<const char*> modes = {"none", "cache"};
    if (workers == 1 || workers == 4) modes.push_back("obs");
    for (const char* mode : modes) {
      QueryExecutorOptions opt;
      opt.num_threads = workers;
      if (std::string(mode) == "cache") opt.result_cache_entries = 4096;
      RowResult row = run_config(workers, mode, opt, /*allow_shed=*/false);
      if (workers == 1 && row.mode == "none") qps1 = row.qps;
      if (workers == 4 && row.mode == "none") qps4 = row.qps;
      if (workers == 4 && row.mode == "cache") qps4_cache = row.qps;
      PrintRow({std::to_string(row.workers), row.mode, Cell(row.batch_ms, 1),
                Cell(row.qps, 1), Cell(qps1 > 0 ? row.qps / qps1 : 0.0, 2),
                Cell(row.hit_rate, 2), Cell(row.shed_rate, 2),
                row.identical ? "yes" : "NO"});
      if (!row.identical) {
        std::fprintf(stderr,
                     "FATAL: results diverged at %d workers (mode %s)\n",
                     workers, mode);
        return 1;
      }
      rows.push_back(row);
    }
  }
  {
    // Admission demo: capacity far below the batch size -> typed shedding.
    QueryExecutorOptions opt;
    opt.num_threads = 4;
    opt.max_inflight = 8;
    opt.max_queued = 8;
    opt.batch_share = 1.0;
    RowResult row = run_config(4, "admit", opt, /*allow_shed=*/true);
    PrintRow({std::to_string(row.workers), row.mode, Cell(row.batch_ms, 1),
              Cell(row.qps, 1), Cell(qps1 > 0 ? row.qps / qps1 : 0.0, 2),
              Cell(row.hit_rate, 2), Cell(row.shed_rate, 2),
              row.identical ? "yes" : "NO"});
    if (!row.identical) {
      std::fprintf(stderr, "FATAL: admitted results diverged\n");
      return 1;
    }
    rows.push_back(row);
  }

  // --- Multi-tenant WFQ sweep ------------------------------------------------
  // Skewed-weight tenants saturate a 2-ticket pool from closed-loop
  // clients; completions are counted only once every tenant has waiters
  // queued (fairness is a property of how saturated demand drains, not of
  // client start-up order).
  std::vector<TenantRow> tenant_rows;
  {
    auto busy_plan = stack.engine->planner().PlanSQuery(
        {stack.query_location, HMS(10), 600, 0.2});
    if (!busy_plan.ok()) {
      std::fprintf(stderr, "FATAL: tenant sweep plan: %s\n",
                   busy_plan.status().ToString().c_str());
      return 1;
    }
    auto run_tenants = [&](const std::vector<uint32_t>& weights) -> TenantRow {
      QueryExecutorOptions opt;
      opt.num_threads = 2;
      opt.max_inflight = 2;
      opt.tenant_fairness = true;
      auto executor = stack.engine->MakeExecutor(opt);
      TenantRegistry* registry = executor->tenant_registry();
      uint32_t weight_sum = 0;
      for (size_t i = 0; i < weights.size(); ++i) {
        registry->Configure(static_cast<TenantId>(i + 1),
                            {.weight = weights[i], .max_inflight = 0,
                             .max_queued = 64});
        weight_sum += weights[i];
      }
      // Enough completions that the smallest share is well above count
      // granularity (the lightest tenant should land >= ~20 completions).
      const int target_total =
          std::max(120, 40 * static_cast<int>(weight_sum));

      std::vector<QueryPlan> plans;
      for (size_t i = 0; i < weights.size(); ++i) {
        QueryPlan plan = *busy_plan;
        plan.tenant = static_cast<TenantId>(i + 1);
        plans.push_back(std::move(plan));
      }
      std::atomic<int> total{0};
      std::vector<std::atomic<int>> per_tenant(weights.size() + 1);
      for (auto& c : per_tenant) c.store(0);
      std::atomic<bool> counting{false};
      std::atomic<bool> stop{false};
      Stopwatch window_watch;
      std::vector<std::thread> clients;
      for (const QueryPlan& plan : plans) {
        // A weight-w tenant needs w consecutive grants to spend a DRR
        // turn; with too few clients its queue drains mid-turn and it
        // forfeits the remainder, under-serving heavy tenants. Keep each
        // tenant's queue deeper than its weight.
        int tenant_clients =
            3 + static_cast<int>(weights[plan.tenant - 1]);
        for (int c = 0; c < tenant_clients; ++c) {
          clients.emplace_back([&, &plan = plan] {
            while (!stop.load()) {
              auto result = executor->Execute(plan);
              if (!result.ok()) continue;  // tenancy never sheds here
              if (counting.load()) {
                per_tenant[plan.tenant].fetch_add(1);
                if (total.fetch_add(1) + 1 >= target_total) stop.store(true);
              }
            }
          });
        }
      }
      WfqAdmissionController* wfq = executor->wfq_admission();
      auto all_queued = [&] {
        for (size_t i = 0; i < weights.size(); ++i) {
          if (wfq->queued(static_cast<TenantId>(i + 1)) == 0) return false;
        }
        return true;
      };
      while (!all_queued()) std::this_thread::yield();
      window_watch.Reset();
      counting.store(true);
      for (auto& t : clients) t.join();
      double window_ms = window_watch.ElapsedMillis();

      TenantRow row;
      row.tenants = static_cast<int>(weights.size());
      for (size_t i = 0; i < weights.size(); ++i) {
        row.weights += (i > 0 ? ":" : "") + std::to_string(weights[i]);
      }
      int counted = 0;
      for (size_t i = 1; i <= weights.size(); ++i) {
        counted += per_tenant[i].load();
      }
      row.qps = counted / (window_ms / 1000.0);
      for (size_t i = 0; i < weights.size(); ++i) {
        int count = per_tenant[i + 1].load();
        if (count == 0) row.no_starvation = false;
        double observed = static_cast<double>(count) / counted;
        double expected = static_cast<double>(weights[i]) / weight_sum;
        double err = std::abs(observed - expected) / expected;
        row.max_weight_err = std::max(row.max_weight_err, err);
        row.shares += (i > 0 ? ":" : "") + Cell(observed, 2);
      }
      return row;
    };

    std::printf("\nMulti-tenant WFQ: skewed weights vs 2-ticket pool "
                "(closed-loop clients, counted after saturation)\n");
    PrintRow({"tenants", "weights", "shares", "qps", "max_weight_err",
              "no_starvation"});
    for (const std::vector<uint32_t>& weights :
         std::vector<std::vector<uint32_t>>{{1, 2}, {1, 2, 4}, {1, 2, 4, 8}}) {
      TenantRow row = run_tenants(weights);
      PrintRow({std::to_string(row.tenants), row.weights, row.shares,
                Cell(row.qps, 1), Cell(row.max_weight_err, 3),
                row.no_starvation ? "yes" : "NO"});
      tenant_rows.push_back(row);
    }
    double worst_err = 0.0;
    bool starved = false;
    for (const TenantRow& r : tenant_rows) {
      worst_err = std::max(worst_err, r.max_weight_err);
      starved = starved || !r.no_starvation;
    }
    ShapeCheck("wfq_completion_shares_track_weights", worst_err <= 0.20,
               "max relative deviation from weight share " +
                   Cell(worst_err, 3) + " (<= 0.20 required)");
    ShapeCheck("wfq_no_tenant_starves", !starved,
               starved ? "a tenant completed zero queries under saturation"
                       : "every tenant progressed in every sweep");
  }

  // --- Live ingestion sweep --------------------------------------------------
  // Queries pin immutable snapshots while the ingestor publishes refreshes
  // concurrently — no quiescing. Each rate runs a fixed wall-clock window
  // with per-query latencies recorded for p99.
  std::vector<LiveRow> live_rows;
  {
    const RoadNetwork& network = stack.engine->network();
    const SpeedProfile& profile = stack.engine->speed_profile();
    const int64_t slot_sec = profile.slot_seconds();
    const int32_t num_slots = profile.num_slots();
    // Covered segments per profile slot: the feed reports from roads that
    // carry traffic (same distribution the historical profile was mined
    // from), not from never-observed alleys.
    std::vector<std::vector<SegmentId>> covered(num_slots);
    for (int32_t slot = 0; slot < num_slots; ++slot) {
      for (SegmentId seg = 0; seg < network.NumSegments(); ++seg) {
        if (profile.HasObservations(seg, slot * slot_sec)) {
          covered[slot].push_back(seg);
        }
      }
    }

    const int kQueryThreads = 2;
    const int kWindowMs = 3000;
    auto run_live = [&](int rate) -> LiveRow {
      EpochManager epochs;
      LiveProfileManager live(epochs, profile, stack.engine->con_index());
      QueryExecutorOptions qopt;
      qopt.num_threads = 1;  // queries run on the bench's own threads
      QueryExecutor exec(network, stack.engine->st_index(),
                         stack.engine->con_index(), profile,
                         stack.engine->delta_t_seconds(), qopt, &live);
      ObservationIngestorOptions iopt;
      iopt.batch_window_ms = 200;
      iopt.queue_bound = 1 << 15;
      ObservationIngestor ingest(live, iopt);

      // Steady-state priming, identical for every rate (including the
      // 0-updates baseline): a production feed has been ingesting for
      // hours, so slot extremes are saturated and most later publishes are
      // quiet. Feed a few seconds' worth of the same distribution through
      // a throwaway manual ingestor (so the measuring ingestor's stats
      // stay pure), then re-warm the tables the priming invalidated, so
      // the timed window measures ingest-under-load, not cold-start
      // invalidation.
      {
        ObservationIngestorOptions prime_iopt;
        prime_iopt.manual = true;
        prime_iopt.queue_bound = 1 << 15;
        ObservationIngestor prime_ingest(live, prime_iopt);
        Rng prime_rng(777);
        LiveObservationOptions prime_opt;
        prime_opt.seed = 7;
        LiveObservationSource prime(network, prime_opt);
        for (int i = 0; i < 12000; ++i) {
          int64_t tod = prime_rng.UniformInt(0, kSecondsPerDay - 1);
          const auto& segs = covered[static_cast<size_t>(tod / slot_sec)];
          if (segs.empty()) continue;
          SegmentId seg = segs[static_cast<size_t>(prime_rng.UniformInt(
              0, static_cast<int64_t>(segs.size()) - 1))];
          prime_ingest.Offer(prime.NextAt(seg, tod));
        }
        prime_ingest.Flush();
      }
      const uint64_t primed_versions = live.version();
      const uint64_t primed_slots = live.stats().slots_invalidated +
                                    live.stats().slots_partially_invalidated;
      // Warm sweep doubles as the per-run reference: at rate 0 no further
      // publishes land, so every timed query must reproduce these regions
      // bit-identically (the primed profile differs from the global
      // `reference` by design — it absorbed the priming stream).
      std::vector<StatusOr<RegionResult>> primed_reference;
      primed_reference.reserve(plans.size());
      for (const QueryPlan& plan : plans) {
        primed_reference.push_back(exec.Execute(plan));
      }

      std::atomic<bool> stop{false};
      std::thread feeder;
      if (rate > 0) {
        feeder = std::thread([&] {
          Rng rng(4242);
          LiveObservationOptions src_opt;
          src_opt.seed = 99;
          LiveObservationSource source(network, src_opt);
          const auto interval = std::chrono::microseconds(1000000 / rate);
          auto next = std::chrono::steady_clock::now();
          while (!stop.load()) {
            int64_t tod = rng.UniformInt(0, kSecondsPerDay - 1);
            const auto& segs = covered[static_cast<size_t>(tod / slot_sec)];
            if (!segs.empty()) {
              SegmentId seg = segs[static_cast<size_t>(
                  rng.UniformInt(0, static_cast<int64_t>(segs.size()) - 1))];
              ingest.Offer(source.NextAt(seg, tod));
            }
            next += interval;
            std::this_thread::sleep_until(next);
          }
        });
      }

      // Per-query latency sink: a private (always-enabled) registry so the
      // bench's own recording never depends on — or pollutes — the global
      // export surface. Sharded buckets make the concurrent Record calls
      // below cheap and race-free.
      obs::MetricsRegistry latency_registry(/*enabled=*/true);
      obs::Histogram& latency_us =
          latency_registry.GetHistogram("bench_live_latency_us");
      std::atomic<bool> identical{true};
      auto deadline = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(kWindowMs);
      Stopwatch window_watch;
      std::vector<std::thread> queriers;
      for (int t = 0; t < kQueryThreads; ++t) {
        queriers.emplace_back([&, t] {
          size_t i = t;  // interleave the fixed workload across threads
          while (std::chrono::steady_clock::now() < deadline) {
            Stopwatch watch;
            auto result = exec.Execute(plans[i % plans.size()]);
            if (!result.ok()) {
              identical.store(false);
              continue;
            }
            latency_us.Record(static_cast<uint64_t>(watch.ElapsedMicros()));
            if (rate == 0) {
              const auto& expected = primed_reference[i % plans.size()];
              if (!expected.ok() || result->segments != expected->segments) {
                identical.store(false);
              }
            }
            ++i;
          }
        });
      }
      for (auto& t : queriers) t.join();
      double elapsed_ms = window_watch.ElapsedMillis();
      stop.store(true);
      if (feeder.joinable()) feeder.join();
      ingest.Stop();

      LiveRow row;
      row.rate = rate;
      const uint64_t served = latency_us.Count();
      row.qps = served == 0 ? 0.0
                            : static_cast<double>(served) /
                                  (elapsed_ms / 1000.0);
      row.p50_ms = latency_us.Percentile(0.50) / 1000.0;
      row.p95_ms = latency_us.Percentile(0.95) / 1000.0;
      row.p99_ms = latency_us.Percentile(0.99) / 1000.0;
      row.staleness_ms = ingest.stats().mean_staleness_ms;
      row.versions = live.version() - primed_versions;
      row.slots_invalidated = live.stats().slots_invalidated +
                              live.stats().slots_partially_invalidated -
                              primed_slots;
      row.identical = identical.load();
      return row;
    };

    std::printf("\nLive ingestion: %d query threads vs observation stream "
                "(batch window 200 ms, steady-state primed)\n",
                kQueryThreads);
    PrintRow({"obs_per_sec", "qps", "p50_ms", "p95_ms", "p99_ms",
              "staleness_ms", "versions", "slots_inval", "identical"});
    for (int rate : {0, 100, 1000}) {
      LiveRow row = run_live(rate);
      PrintRow({std::to_string(row.rate), Cell(row.qps, 1),
                Cell(row.p50_ms, 1), Cell(row.p95_ms, 1),
                Cell(row.p99_ms, 1), Cell(row.staleness_ms, 1),
                std::to_string(row.versions),
                std::to_string(row.slots_invalidated),
                row.identical ? "yes" : "NO"});
      if (!row.identical) {
        std::fprintf(stderr, "FATAL: live rate %d diverged from reference\n",
                     rate);
        return 1;
      }
      live_rows.push_back(row);
    }
  }

  // --- Sharded serving sweep -------------------------------------------------
  // The scatter-gather tier vs shard count: each config partitions the
  // network into N EngineShards (1 query thread + 1 slice thread each, so
  // parallelism comes from the partition alone) and hammers the
  // coordinator from closed-loop clients replaying the fixed workload.
  // The 1-shard config routes everything through a single query pool — a
  // true serialized baseline. The shared result cache stays off so the
  // sweep measures execution, not hit absorption.
  std::vector<ShardRow> shard_rows;
  {
    const int kShardWindowMs = 2000;
    auto run_shards = [&](int shards, int workers) -> ShardRow {
      ShardingOptions sopt;
      sopt.num_shards = shards;
      sopt.shard_query_threads = 1;
      sopt.slice_threads = 1;
      auto coordinator = stack.engine->MakeShardCoordinator(sopt);

      // Warm pass: every shard's executor materializes the lazy tables it
      // will touch, and the whole workload is identity-checked up front.
      std::atomic<bool> identical{true};
      for (size_t i = 0; i < plans.size(); ++i) {
        auto result = coordinator->Execute(plans[i]);
        if (!result.ok() || result->segments != reference[i]->segments) {
          identical.store(false);
        }
      }

      ShardCoordinator::Stats before = coordinator->stats();
      obs::MetricsRegistry latency_registry(/*enabled=*/true);
      obs::Histogram& latency_us =
          latency_registry.GetHistogram("bench_shard_latency_us");
      auto deadline = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(kShardWindowMs);
      Stopwatch window_watch;
      std::vector<std::thread> clients;
      for (int t = 0; t < workers; ++t) {
        clients.emplace_back([&, t] {
          size_t i = static_cast<size_t>(t);  // interleave across clients
          while (std::chrono::steady_clock::now() < deadline) {
            Stopwatch watch;
            auto result = coordinator->Execute(plans[i % plans.size()]);
            if (!result.ok() ||
                result->segments != reference[i % plans.size()]->segments) {
              identical.store(false);
            } else {
              latency_us.Record(
                  static_cast<uint64_t>(watch.ElapsedMicros()));
            }
            ++i;
          }
        });
      }
      for (auto& t : clients) t.join();
      double elapsed_ms = window_watch.ElapsedMillis();
      ShardCoordinator::Stats after = coordinator->stats();

      ShardRow row;
      row.shards = shards;
      row.workers = workers;
      const uint64_t served = latency_us.Count();
      row.qps = served == 0
                    ? 0.0
                    : static_cast<double>(served) / (elapsed_ms / 1000.0);
      row.p99_ms = latency_us.Percentile(0.99) / 1000.0;
      uint64_t routed = after.routed - before.routed;
      uint64_t crossed = after.cross_shard - before.cross_shard;
      row.cross_shard_fraction =
          routed > 0 ? static_cast<double>(crossed) / routed : 0.0;
      row.identical = identical.load();
      return row;
    };

    std::printf("\nSharded serving: shard count vs closed-loop clients "
                "(1 query + 1 slice thread per shard)\n");
    PrintRow({"shards", "workers", "qps", "p99_ms", "cross_shard",
              "identical"});
    for (int shards : {1, 2, 4}) {
      for (int workers : {1, 4}) {
        ShardRow row = run_shards(shards, workers);
        PrintRow({std::to_string(row.shards), std::to_string(row.workers),
                  Cell(row.qps, 1), Cell(row.p99_ms, 1),
                  Cell(row.cross_shard_fraction, 2),
                  row.identical ? "yes" : "NO"});
        if (!row.identical) {
          std::fprintf(
              stderr,
              "FATAL: sharded results diverged (%d shards, %d workers)\n",
              shards, workers);
          return 1;
        }
        shard_rows.push_back(row);
      }
    }
    auto shard_row = [&](int shards, int workers) -> const ShardRow* {
      for (const ShardRow& r : shard_rows) {
        if (r.shards == shards && r.workers == workers) return &r;
      }
      return nullptr;
    };
    const ShardRow* one = shard_row(1, 4);
    const ShardRow* four = shard_row(4, 4);
    if (std::thread::hardware_concurrency() >= 4) {
      bool shard_scale_ok =
          one != nullptr && four != nullptr && four->qps >= 1.5 * one->qps;
      ShapeCheck("sharding_scales_with_shards", shard_scale_ok,
                 "4-shard qps " + Cell(four ? four->qps : 0.0, 1) +
                     " vs 1-shard " + Cell(one ? one->qps : 0.0, 1) +
                     " at 4 clients (>= 1.5x expected)");
    }
  }

  // --- Storage engine sweep --------------------------------------------------
  // Cold restart measured end to end (Recover + Replay into a fresh
  // LiveProfileManager) over the same deterministic acked stream, once
  // bare and once checkpointed; best-of-3 because recovery is
  // single-threaded and scheduling noise only ever adds time. The
  // compaction and block-cache rows are scale-free counts/rates.
  std::vector<StorageRow> storage_rows;
  {
    namespace fs = std::filesystem;
    const char* scale_env = std::getenv("STRR_BENCH_SCALE");
    const bool small_scale =
        scale_env != nullptr && std::string(scale_env) == "small";
    // Negative hook for the CI gate: with checkpointing silently off, the
    // "checkpoint" row's restart collapses to a full replay and
    // check_regression.py's speedup floor must catch it.
    const bool disable_checkpoint =
        std::getenv("STRR_STORAGE_DISABLE_CHECKPOINT") != nullptr;
    const uint64_t kStorageBatches = small_scale ? 4000 : 12000;
    const uint32_t num_segments =
        static_cast<uint32_t>(stack.dataset.network.NumSegments());

    auto fresh_dir = [](const std::string& tag) {
      std::string dir =
          (fs::temp_directory_path() / ("strr_bench_storage_" + tag))
              .string();
      fs::remove_all(dir);
      fs::create_directories(dir);
      return dir;
    };

    // Journals the deterministic stream batch by batch (small memtable so
    // many tables seal; WAL sync off — build cost is not what's timed).
    auto build_journal =
        [&](const std::string& dir, bool checkpoint,
            bool compaction) -> StatusOr<ObservationJournal::Stats> {
      STRR_ASSIGN_OR_RETURN(RecoveredLog recovered,
                            RecoveryManager::Recover(dir));
      ObservationJournalOptions jopt;
      jopt.dir = dir;
      jopt.memtable_flush_bytes = 8 * 1024;
      jopt.sync_each_batch = false;
      jopt.slot_seconds = 3600;
      if (checkpoint) jopt.checkpoint_interval_batches = kStorageBatches / 4;
      jopt.compaction = compaction;
      jopt.compaction_small_bytes = 64 * 1024;
      jopt.compaction_min_tables = 3;
      STRR_ASSIGN_OR_RETURN(auto journal,
                            ObservationJournal::Open(jopt, recovered));
      for (uint64_t seq = 1; seq <= kStorageBatches; ++seq) {
        STRR_RETURN_IF_ERROR(
            journal->AppendBatch(crash_stream::GenBatch(seq, num_segments))
                .status());
      }
      // Final checkpoint covers the whole acked stream, so the restart
      // below replays ~nothing — the best case the knob is sold on.
      if (checkpoint) STRR_RETURN_IF_ERROR(journal->Checkpoint());
      journal->WaitForMaintenance();
      return journal->stats();
    };

    auto time_restart = [&](const std::string& dir,
                            StorageRow& row) -> Status {
      double best_ms = -1.0;
      for (int run = 0; run < 3; ++run) {
        EpochManager epochs;
        LiveProfileManager live(epochs, stack.engine->speed_profile(),
                                stack.engine->con_index());
        Stopwatch watch;
        STRR_ASSIGN_OR_RETURN(RecoveredLog recovered,
                              RecoveryManager::Recover(dir));
        STRR_RETURN_IF_ERROR(
            RecoveryManager::Replay(recovered, live).status());
        double ms = watch.ElapsedMillis();
        row.replayed_batches = recovered.replay_batches();
        if (best_ms < 0.0 || ms < best_ms) best_ms = ms;
      }
      row.restart_ms = best_ms;
      return Status::OK();
    };

    auto run_cache = [&](CachePolicy policy, StorageRow& row) -> Status {
      std::string dir = fresh_dir(policy == CachePolicy::kTinyLfu
                                      ? "cache_tinylfu"
                                      : "cache_lru");
      constexpr PageId kPages = 128;
      constexpr PageId kHotPages = 8;
      STRR_ASSIGN_OR_RETURN(auto file,
                            FileManager::Create(dir + "/pages.dat", 4096));
      for (PageId i = 0; i < kPages; ++i) {
        STRR_ASSIGN_OR_RETURN(PageId id, file->AllocatePage());
        Page page(4096);
        char tag = static_cast<char>('A' + (id % 26));
        page.Write(0, &tag, 1);
        STRR_RETURN_IF_ERROR(file->WritePage(id, page));
      }
      BufferPoolOptions popt;
      popt.capacity_pages = 16;
      popt.policy = policy;
      popt.protected_share = 0.5;
      popt.role = "bench_storage";
      BufferPool pool(file.get(), popt);
      // Scan-polluted hot set: the recurring pages earn frequency, then
      // every round drags a one-shot scan through the pool. TinyLFU's
      // admission contest keeps the hot set resident; LRU surrenders it
      // to the scan each round.
      for (int round = 0; round < 4; ++round) {
        for (int rep = 0; rep < 4; ++rep) {
          for (PageId id = 0; id < kHotPages; ++id) {
            char byte = 0;
            STRR_RETURN_IF_ERROR(pool.ReadInto(id, 0, &byte, 1));
          }
        }
        for (PageId id = kHotPages; id < kPages; ++id) {
          char byte = 0;
          STRR_RETURN_IF_ERROR(pool.ReadInto(id, 0, &byte, 1));
        }
      }
      StorageStats stats = pool.stats();
      uint64_t lookups = stats.cache_hits + stats.cache_misses;
      row.hit_rate = lookups == 0
                         ? 0.0
                         : static_cast<double>(stats.cache_hits) /
                               static_cast<double>(lookups);
      row.admission_rejects = pool.detail().admission_rejects;
      return Status::OK();
    };

    auto storage_fatal = [](const std::string& what, const Status& status) {
      std::fprintf(stderr, "FATAL: storage sweep %s: %s\n", what.c_str(),
                   status.ToString().c_str());
    };

    std::printf("\nStorage engine: cold restart, compaction, block cache "
                "(%llu-batch journal)\n",
                static_cast<unsigned long long>(kStorageBatches));
    PrintRow({"config", "restart_ms", "replayed", "tbl_before", "tbl_after",
              "hit_rate", "adm_rejects"});
    auto print_storage_row = [&](const StorageRow& r) {
      PrintRow({r.config, r.restart_ms < 0 ? "-" : Cell(r.restart_ms, 2),
                std::to_string(r.replayed_batches),
                r.tables_before < 0 ? "-" : std::to_string(r.tables_before),
                r.tables_after < 0 ? "-" : std::to_string(r.tables_after),
                r.hit_rate < 0 ? "-" : Cell(r.hit_rate, 3),
                std::to_string(r.admission_rejects)});
    };

    {
      StorageRow row;
      row.config = "replay";
      std::string dir = fresh_dir("replay");
      auto stats = build_journal(dir, /*checkpoint=*/false,
                                 /*compaction=*/false);
      if (!stats.ok()) {
        storage_fatal("replay build", stats.status());
        return 1;
      }
      if (Status s = time_restart(dir, row); !s.ok()) {
        storage_fatal("replay restart", s);
        return 1;
      }
      row.tables_before = static_cast<int64_t>(stats->tables_flushed);
      row.tables_after = static_cast<int64_t>(stats->live_tables);
      print_storage_row(row);
      storage_rows.push_back(row);
      fs::remove_all(dir);
    }
    {
      StorageRow row;
      row.config = "checkpoint";
      std::string dir = fresh_dir("checkpoint");
      auto stats = build_journal(dir, /*checkpoint=*/!disable_checkpoint,
                                 /*compaction=*/false);
      if (!stats.ok()) {
        storage_fatal("checkpoint build", stats.status());
        return 1;
      }
      if (Status s = time_restart(dir, row); !s.ok()) {
        storage_fatal("checkpoint restart", s);
        return 1;
      }
      row.tables_before = static_cast<int64_t>(stats->tables_flushed);
      row.tables_after = static_cast<int64_t>(stats->live_tables);
      print_storage_row(row);
      storage_rows.push_back(row);
      fs::remove_all(dir);
    }
    {
      StorageRow row;
      row.config = "compaction";
      std::string dir = fresh_dir("compact");
      auto stats = build_journal(dir, /*checkpoint=*/false,
                                 /*compaction=*/true);
      if (!stats.ok()) {
        storage_fatal("compaction build", stats.status());
        return 1;
      }
      row.tables_before = static_cast<int64_t>(stats->tables_flushed);
      row.tables_after = static_cast<int64_t>(stats->live_tables);
      print_storage_row(row);
      storage_rows.push_back(row);
      fs::remove_all(dir);
    }
    for (CachePolicy policy : {CachePolicy::kLru, CachePolicy::kTinyLfu}) {
      StorageRow row;
      row.config = policy == CachePolicy::kTinyLfu ? "block_cache_tinylfu"
                                                   : "block_cache_lru";
      if (Status s = run_cache(policy, row); !s.ok()) {
        storage_fatal(row.config, s);
        return 1;
      }
      print_storage_row(row);
      storage_rows.push_back(row);
    }

    const StorageRow& replay_row = storage_rows[0];
    const StorageRow& ckpt_row = storage_rows[1];
    const StorageRow& compact_row = storage_rows[2];
    double speedup = ckpt_row.restart_ms > 0.0
                         ? replay_row.restart_ms / ckpt_row.restart_ms
                         : 0.0;
    ShapeCheck("checkpoint_restart_beats_full_replay",
               speedup >= 1.25 &&
                   ckpt_row.replayed_batches < replay_row.replayed_batches,
               "restart " + Cell(ckpt_row.restart_ms, 2) + " ms replaying " +
                   std::to_string(ckpt_row.replayed_batches) +
                   " batches vs full replay " +
                   Cell(replay_row.restart_ms, 2) + " ms over " +
                   std::to_string(replay_row.replayed_batches) +
                   " (speedup " + Cell(speedup, 2) + "x, floor 1.25x)");
    ShapeCheck("compaction_reduces_table_count",
               compact_row.tables_after >= 0 &&
                   compact_row.tables_after < compact_row.tables_before,
               std::to_string(compact_row.tables_before) +
                   " sealed tables merged down to " +
                   std::to_string(compact_row.tables_after));
    const StorageRow& lru_row = storage_rows[3];
    const StorageRow& tinylfu_row = storage_rows[4];
    ShapeCheck("tinylfu_beats_lru_under_scan",
               tinylfu_row.hit_rate > lru_row.hit_rate &&
                   tinylfu_row.admission_rejects > 0,
               "scan-polluted hit rate " + Cell(tinylfu_row.hit_rate, 3) +
                   " (TinyLFU, " +
                   std::to_string(tinylfu_row.admission_rejects) +
                   " admission rejects) vs " + Cell(lru_row.hit_rate, 3) +
                   " (LRU)");
  }

  bool scale_ok = qps4 >= 2.0 * qps1;
  ShapeCheck("throughput_scales_with_workers", scale_ok,
             "4-worker qps " + Cell(qps4, 1) + " vs 1-worker " +
                 Cell(qps1, 1) +
                 " (>=2x expected on >=4 cores; this host has " +
                 std::to_string(std::thread::hardware_concurrency()) +
                 " hardware threads)");
  RowResult* cache4 = nullptr;
  for (RowResult& r : rows) {
    if (r.workers == 4 && r.mode == "cache") cache4 = &r;
  }
  bool cache_ok = cache4 != nullptr && cache4->hit_rate > 0.0 &&
                  qps4_cache >= qps4;
  ShapeCheck("cache_absorbs_hot_spot_repeats", cache_ok,
             "4-worker warm hit rate " +
                 Cell(cache4 ? cache4->hit_rate : 0.0, 2) + ", cached qps " +
                 Cell(qps4_cache, 1) + " vs uncached " + Cell(qps4, 1));
  RowResult& admit = rows.back();
  ShapeCheck("admission_sheds_over_capacity_typed", admit.shed_rate > 0.0,
             "shed rate " + Cell(admit.shed_rate, 2) +
                 " with capacity 8 against a 64-plan batch");
  {
    const LiveRow& base_row = live_rows[0];
    const LiveRow& hot_row = live_rows.back();
    ShapeCheck("live_updates_preserve_throughput",
               hot_row.qps >= 0.8 * base_row.qps,
               "qps at " + std::to_string(hot_row.rate) + " obs/s " +
                   Cell(hot_row.qps, 1) + " vs 0-updates baseline " +
                   Cell(base_row.qps, 1) + " (>= 80% required)");
    ShapeCheck("live_snapshots_actually_publish", hot_row.versions > 0,
               std::to_string(hot_row.versions) +
                   " versions published at 1k obs/s, staleness " +
                   Cell(hot_row.staleness_ms, 1) + " ms");
  }

  if (const char* json_path = std::getenv("STRR_BENCH_JSON")) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"throughput_concurrent\",\n");
    std::fprintf(f, "  \"queries_per_batch\": %zu,\n", plans.size());
    std::fprintf(f, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const RowResult& r = rows[i];
      std::fprintf(f,
                   "    {\"workers\": %d, \"mode\": \"%s\", \"batch_ms\": "
                   "%.2f, \"qps\": %.1f, \"hit_rate\": %.3f, \"shed_rate\": "
                   "%.3f, \"identical\": %s}%s\n",
                   r.workers, r.mode.c_str(), r.batch_ms, r.qps, r.hit_rate,
                   r.shed_rate, r.identical ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"tenant_rows\": [\n");
    for (size_t i = 0; i < tenant_rows.size(); ++i) {
      const TenantRow& r = tenant_rows[i];
      std::fprintf(f,
                   "    {\"tenants\": %d, \"weights\": \"%s\", \"shares\": "
                   "\"%s\", \"qps\": %.1f, \"max_weight_err\": %.3f, "
                   "\"no_starvation\": %s}%s\n",
                   r.tenants, r.weights.c_str(), r.shares.c_str(), r.qps,
                   r.max_weight_err, r.no_starvation ? "true" : "false",
                   i + 1 < tenant_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"live_rows\": [\n");
    for (size_t i = 0; i < live_rows.size(); ++i) {
      const LiveRow& r = live_rows[i];
      std::fprintf(
          f,
          "    {\"obs_per_sec\": %d, \"qps\": %.1f, \"p50_ms\": %.2f, "
          "\"p95_ms\": %.2f, \"p99_ms\": %.2f, "
          "\"staleness_ms\": %.2f, \"versions\": %llu, "
          "\"slots_invalidated\": %llu, \"identical\": %s}%s\n",
          r.rate, r.qps, r.p50_ms, r.p95_ms, r.p99_ms, r.staleness_ms,
          static_cast<unsigned long long>(r.versions),
          static_cast<unsigned long long>(r.slots_invalidated),
          r.identical ? "true" : "false", i + 1 < live_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"shard_rows\": [\n");
    for (size_t i = 0; i < shard_rows.size(); ++i) {
      const ShardRow& r = shard_rows[i];
      std::fprintf(f,
                   "    {\"shards\": %d, \"workers\": %d, \"qps\": %.1f, "
                   "\"p99_ms\": %.2f, \"cross_shard_fraction\": %.3f, "
                   "\"identical\": %s}%s\n",
                   r.shards, r.workers, r.qps, r.p99_ms,
                   r.cross_shard_fraction, r.identical ? "true" : "false",
                   i + 1 < shard_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"storage_rows\": [\n");
    for (size_t i = 0; i < storage_rows.size(); ++i) {
      const StorageRow& r = storage_rows[i];
      std::fprintf(f,
                   "    {\"config\": \"%s\", \"restart_ms\": %.3f, "
                   "\"replayed_batches\": %llu, \"tables_before\": %lld, "
                   "\"tables_after\": %lld, \"hit_rate\": %.3f, "
                   "\"admission_rejects\": %llu}%s\n",
                   r.config.c_str(), r.restart_ms,
                   static_cast<unsigned long long>(r.replayed_batches),
                   static_cast<long long>(r.tables_before),
                   static_cast<long long>(r.tables_after), r.hit_rate,
                   static_cast<unsigned long long>(r.admission_rejects),
                   i + 1 < storage_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "# wrote %s\n", json_path);
  }
  return 0;
}
