// Table 4.2 — Evaluation Configuration.
//
// Prints the parameter grid every figure bench sweeps, and verifies the
// engine accepts each configuration (index built per Δt, query paths
// runnable end to end).
#include <cstdio>

#include "bench/bench_common.h"

using namespace strr;        // NOLINT
using namespace strr::bench;  // NOLINT

int main() {
  std::printf("Table 4.2: Evaluation Configuration\n");
  PrintRow({"Parameter", "Settings"});
  PrintRow({"--------------", "----------------------------------------"});
  PrintRow({"duration L", "{5, 10, ..., 35} min"});
  PrintRow({"prob Prob", "{20%, 40%, 60%, 80%, 100%}"});
  PrintRow({"start time T", "{00:00, ..., 23:00} hourly"});
  PrintRow({"interval dt", "{1, 5, 10, 20} min"});
  PrintRow({"s-query", "ES, SQMB+TBS"});
  PrintRow({"m-query", "SQMB+TBS (repeated), MQMB+TBS"});

  auto dataset = LoadOrBuildBenchDataset();
  if (!dataset.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", dataset.status().ToString().c_str());
    return 1;
  }

  // Smoke-run one configuration from each family.
  auto engine = BuildBenchEngine(*dataset, 300);
  if (!engine.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  XyPoint loc = PickBusyLocation(**engine, *dataset, HMS(11));
  SQuery q{loc, HMS(11), 600, 0.2};
  bool s_ok = (*engine)->SQueryIndexed(q).ok();
  bool es_ok = (*engine)->SQueryExhaustive(q).ok();
  MQuery m;
  m.locations = {loc, dataset->center};
  m.start_tod = HMS(11);
  m.duration = 600;
  m.prob = 0.2;
  bool m_ok = (*engine)->MQueryIndexed(m).ok();
  bool rep_ok = (*engine)->MQueryRepeatedSQuery(m).ok();

  ShapeCheck("tab4.2.s_query_paths", s_ok && es_ok, "SQMB+TBS and ES run");
  ShapeCheck("tab4.2.m_query_paths", m_ok && rep_ok,
             "MQMB+TBS and repeated s-query run");
  return (s_ok && es_ok && m_ok && rep_ok) ? 0 : 1;
}
