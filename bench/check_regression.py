#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh bench_throughput_concurrent JSON
against the committed BENCH_throughput.json baseline.

The committed baseline was recorded on the bench host at full scale; CI
runs the bench at STRR_BENCH_SCALE=small on whatever runner it gets, so
raw qps numbers are not comparable across the two. The gate therefore
checks three kinds of signals:

  * hard invariants — every row's `identical` flag must be true (threading
    / caching / tenancy must never change a region), typed shedding must
    still happen where the baseline shed, no tenant may starve;
  * scale-free rates — hit_rate (cache rows) and the WFQ fairness error
    (tenant rows) carry no host-speed dependence and are compared with
    absolute tolerances;
  * normalized qps — each file's qps rows are divided by that file's own
    1-worker/mode-none row (live rows by the 0-obs/s row), cancelling host
    speed and dataset scale; a normalized ratio that regresses by more
    than --tolerance (default 25%) fails the gate. Rows whose baseline
    batch time is under --min-batch-ms (cache rows: the measurement is
    pure front-door overhead in microseconds) skip the qps check and are
    covered by their hit_rate instead;
  * obs overhead — within the fresh run only, the "obs" mode rows
    (metrics + tracing + an in-window scrape) must stay within
    --obs-overhead-tolerance (default 5%) of the same-worker "none"
    rows, so observability can never silently become expensive;
  * shard scaling — the sharded serving sweep's rows must all be
    bit-identical to the unsharded reference (hard failure), and within
    the fresh run the 4-shard config must sustain at least
    --min-shard-speedup x the 1-shard qps at 4 clients whenever the
    fresh host has >= 4 hardware threads;
  * storage engine — within the fresh run, the checkpointed cold restart
    must beat the full-replay restart by --min-restart-speedup while
    replaying fewer batches, background compaction must end with fewer
    live tables than were sealed, and the block-cache hit-rate rows must
    be present with TinyLFU no worse than LRU under scan pollution.

Exit code 0 = no regression; 1 = regression (reasons printed); 2 = usage
or malformed input. Rows present in the baseline but missing from the
fresh run fail the gate (a silently vanished bench config is itself a
regression); new rows in the fresh run are reported and allowed.
"""

import argparse
import json
import sys


def load_section(path, section):
    """Loads `path` and returns its throughput section: either the file IS
    a raw bench output (has a "rows" key) or it is the committed
    multi-section baseline ({section: {...}})."""
    with open(path) as f:
        data = json.load(f)
    if "rows" in data:
        return data
    if section in data:
        return data[section]
    raise ValueError(f"{path}: neither a bench output nor a '{section}' section")


def index_rows(rows, key_fields):
    out = {}
    for row in rows or []:
        out[tuple(row[k] for k in key_fields)] = row
    return out


class Gate:
    def __init__(self):
        self.failures = []
        self.notes = []

    def fail(self, msg):
        self.failures.append(msg)

    def note(self, msg):
        self.notes.append(msg)


def check_presence(gate, kind, base_idx, fresh_idx):
    for key in base_idx:
        if key not in fresh_idx:
            gate.fail(f"{kind} row {key} present in baseline but missing "
                      "from the fresh run")
    for key in fresh_idx:
        if key not in base_idx:
            gate.note(f"{kind} row {key} is new (no baseline to compare)")


def norm_qps(gate, kind, rows_idx, ref_key):
    """qps of each row divided by the reference row's qps. An unusable
    reference (missing row or qps 0) is itself a gate failure — silently
    skipping normalization would wave real regressions through."""
    ref = rows_idx.get(ref_key)
    if not ref or not ref.get("qps"):
        if rows_idx:
            gate.fail(f"{kind}: reference row {ref_key} missing or qps=0 — "
                      "cannot normalize, refusing to skip the qps checks")
        return {}
    return {k: r["qps"] / ref["qps"] for k, r in rows_idx.items()
            if r.get("qps") is not None}


def check_throughput_rows(gate, base, fresh, tolerance, min_batch_ms):
    base_idx = index_rows(base.get("rows"), ("workers", "mode"))
    fresh_idx = index_rows(fresh.get("rows"), ("workers", "mode"))
    check_presence(gate, "throughput", base_idx, fresh_idx)

    for key, row in fresh_idx.items():
        if not row.get("identical", True):
            gate.fail(f"throughput row {key}: identical=false — results "
                      "diverged from the sequential reference")

    ref_key = (1, "none")
    base_norm = norm_qps(gate, "throughput baseline", base_idx, ref_key)
    fresh_norm = norm_qps(gate, "throughput fresh", fresh_idx, ref_key)
    for key, base_row in base_idx.items():
        fresh_row = fresh_idx.get(key)
        if fresh_row is None:
            continue
        # Scale-free rates first.
        if base_row.get("hit_rate", 0) >= 0.5:
            if fresh_row.get("hit_rate", 0) < base_row["hit_rate"] - 0.05:
                gate.fail(f"throughput row {key}: hit_rate "
                          f"{fresh_row.get('hit_rate')} regressed vs baseline "
                          f"{base_row['hit_rate']} (tolerance 0.05 absolute)")
        if base_row.get("shed_rate", 0) > 0 and fresh_row.get("shed_rate", 0) == 0:
            gate.fail(f"throughput row {key}: baseline shed "
                      f"{base_row['shed_rate']} but the fresh run shed "
                      "nothing — admission control stopped gating")
        # Normalized qps (skip overhead-dominated rows and the reference
        # row itself, whose normalized value is 1 by construction).
        if key == ref_key or base_row.get("batch_ms", 0) < min_batch_ms:
            continue
        if key in base_norm and key in fresh_norm:
            allowed = base_norm[key] * (1.0 - tolerance)
            if fresh_norm[key] < allowed:
                gate.fail(
                    f"throughput row {key}: normalized qps {fresh_norm[key]:.3f} "
                    f"regressed more than {tolerance:.0%} vs baseline "
                    f"{base_norm[key]:.3f}")


def check_obs_overhead(gate, fresh, obs_tolerance):
    """Observability cost gate, computed entirely within the fresh run:
    for every worker count that has both an "obs" row (metrics + tracing
    + an in-window Prometheus scrape) and a "none" row, the obs qps may
    not fall more than --obs-overhead-tolerance below the none qps. Both
    rows come from the same host and the same process, so this is a raw
    ratio, not a normalized one. identical=false on obs rows is already
    a hard failure via check_throughput_rows."""
    fresh_idx = index_rows(fresh.get("rows"), ("workers", "mode"))
    compared = 0
    for (workers, mode), row in sorted(fresh_idx.items()):
        if mode != "obs":
            continue
        ref = fresh_idx.get((workers, "none"))
        if ref is None or not ref.get("qps"):
            gate.fail(f"obs overhead: ({workers}, 'obs') row has no usable "
                      f"({workers}, 'none') row to compare against")
            continue
        compared += 1
        ratio = row.get("qps", 0.0) / ref["qps"]
        if ratio < 1.0 - obs_tolerance:
            gate.fail(
                f"obs overhead: {workers}-worker qps with observability on "
                f"is {ratio:.3f}x of the off row — more than "
                f"{obs_tolerance:.0%} overhead")
        else:
            gate.note(f"obs overhead: {workers}-worker on/off qps ratio "
                      f"{ratio:.3f} (floor {1.0 - obs_tolerance:.2f})")
    if compared == 0:
        gate.fail("obs overhead: fresh run has no 'obs' mode rows — the "
                  "overhead measurement silently vanished")


def check_tenant_rows(gate, base, fresh, fairness_tolerance):
    base_idx = index_rows(base.get("tenant_rows"), ("tenants", "weights"))
    fresh_idx = index_rows(fresh.get("tenant_rows"), ("tenants", "weights"))
    check_presence(gate, "tenant", base_idx, fresh_idx)
    for key, row in fresh_idx.items():
        if not row.get("no_starvation", True):
            gate.fail(f"tenant row {key}: a tenant starved under saturation")
        err = row.get("max_weight_err")
        if err is not None and err > fairness_tolerance:
            gate.fail(f"tenant row {key}: WFQ fairness error {err:.3f} "
                      f"exceeds {fairness_tolerance} — completion shares no "
                      "longer track weights")


def check_live_rows(gate, base, fresh, tolerance):
    base_idx = index_rows(base.get("live_rows"), ("obs_per_sec",))
    fresh_idx = index_rows(fresh.get("live_rows"), ("obs_per_sec",))
    check_presence(gate, "live", base_idx, fresh_idx)
    for key, row in fresh_idx.items():
        if not row.get("identical", True):
            gate.fail(f"live row {key}: identical=false")
    ref_key = (0,)
    base_norm = norm_qps(gate, "live baseline", base_idx, ref_key)
    fresh_norm = norm_qps(gate, "live fresh", fresh_idx, ref_key)
    for key in base_idx:
        if key == ref_key or key not in fresh_idx:
            continue
        if key in base_norm and key in fresh_norm:
            allowed = base_norm[key] * (1.0 - tolerance)
            if fresh_norm[key] < allowed:
                gate.fail(
                    f"live row {key}: qps relative to the 0-updates baseline "
                    f"({fresh_norm[key]:.3f}) regressed more than "
                    f"{tolerance:.0%} vs committed ({base_norm[key]:.3f}) — "
                    "ingestion is costing queries more than it used to")


def check_shard_rows(gate, base, fresh, min_shard_speedup):
    """Gate for the sharded serving sweep. identical=false is a hard
    failure on every fresh row — the shard tier is a scheduling-level
    partition over the shared index stack, so any shard count must
    reproduce the unsharded region bit-for-bit. The speedup floor is
    computed entirely within the fresh run (4-shard vs 1-shard qps at 4
    clients — same host, same workload, so host speed cancels without
    normalization) and only engages when the fresh host actually has >= 4
    hardware threads; every shard in the sweep runs one query thread, so
    on fewer cores the shards time-slice a single core and no speedup
    exists to measure."""
    base_idx = index_rows(base.get("shard_rows"), ("shards", "workers"))
    fresh_idx = index_rows(fresh.get("shard_rows"), ("shards", "workers"))
    check_presence(gate, "shard", base_idx, fresh_idx)

    for key, row in fresh_idx.items():
        if not row.get("identical", True):
            gate.fail(f"shard row {key}: identical=false — a sharded "
                      "answer diverged from the unsharded reference")

    if not fresh_idx:
        if base_idx:
            gate.fail("shard rows: baseline has a shard sweep but the "
                      "fresh run produced none")
        return

    hw = fresh.get("hardware_threads", 0)
    one = fresh_idx.get((1, 4))
    four = fresh_idx.get((4, 4))
    if hw >= 4:
        if not one or not one.get("qps") or not four:
            gate.fail("shard rows: 1-shard/4-shard rows at 4 clients "
                      "missing — cannot check the shard-scaling floor")
        else:
            ratio = four.get("qps", 0.0) / one["qps"]
            if ratio < min_shard_speedup:
                gate.fail(
                    f"shard rows: 4-shard qps is {ratio:.2f}x the 1-shard "
                    f"baseline at 4 clients — below the "
                    f"{min_shard_speedup}x floor on a {hw}-thread host")
            else:
                gate.note(f"shard rows: 4-shard speedup {ratio:.2f}x "
                          f"(floor {min_shard_speedup}x)")
    else:
        gate.note(f"shard rows: scaling floor skipped — fresh host has "
                  f"{hw} hardware thread(s)")


def check_storage_rows(gate, base, fresh, min_restart_speedup):
    """Gate for the storage-engine sweep. All signals are computed within
    the fresh run (restart walls come from the same host and the same
    journaled stream, so host speed cancels as a ratio; table counts and
    hit rates are scale-free):

      * the checkpointed cold restart must beat the full-replay restart by
        --min-restart-speedup AND must actually replay fewer batches —
        a checkpoint that silently stops covering the stream fails even
        if the walls happen to tie;
      * background compaction must end with fewer live tables than were
        sealed;
      * both block-cache rows must be present with a usable hit rate, and
        TinyLFU may not fall behind LRU on the scan-polluted workload.

    Rows present in the baseline but missing from the fresh run fail via
    check_presence, so the sweep cannot silently vanish."""
    base_idx = index_rows(base.get("storage_rows"), ("config",))
    fresh_idx = index_rows(fresh.get("storage_rows"), ("config",))
    check_presence(gate, "storage", base_idx, fresh_idx)

    if not fresh_idx:
        if base_idx:
            gate.fail("storage rows: baseline has a storage sweep but the "
                      "fresh run produced none")
        return

    replay = fresh_idx.get(("replay",))
    ckpt = fresh_idx.get(("checkpoint",))
    if not replay or not ckpt:
        gate.fail("storage rows: replay/checkpoint restart rows missing — "
                  "cannot check the restart-latency floor")
    elif replay.get("restart_ms", 0) <= 0 or ckpt.get("restart_ms", 0) <= 0:
        gate.fail("storage rows: restart walls unusable "
                  f"(replay {replay.get('restart_ms')} ms, checkpoint "
                  f"{ckpt.get('restart_ms')} ms)")
    else:
        speedup = replay["restart_ms"] / ckpt["restart_ms"]
        if speedup < min_restart_speedup:
            gate.fail(
                f"storage rows: checkpointed restart is only {speedup:.2f}x "
                f"faster than full replay ({ckpt['restart_ms']} ms vs "
                f"{replay['restart_ms']} ms) — below the "
                f"{min_restart_speedup}x floor")
        elif ckpt.get("replayed_batches", 0) >= replay.get(
                "replayed_batches", 0):
            gate.fail(
                "storage rows: the checkpointed restart replayed "
                f"{ckpt.get('replayed_batches')} batches, no fewer than the "
                f"full replay's {replay.get('replayed_batches')} — the "
                "checkpoint no longer covers the stream")
        else:
            gate.note(f"storage rows: checkpointed restart {speedup:.2f}x "
                      f"faster than full replay (floor "
                      f"{min_restart_speedup}x)")

    compact = fresh_idx.get(("compaction",))
    if not compact:
        gate.fail("storage rows: compaction row missing")
    elif not (0 <= compact.get("tables_after", -1)
              < compact.get("tables_before", -1)):
        gate.fail(
            f"storage rows: compaction left {compact.get('tables_after')} "
            f"tables from {compact.get('tables_before')} sealed — the "
            "background merge stopped reducing the table count")

    lru = fresh_idx.get(("block_cache_lru",))
    tinylfu = fresh_idx.get(("block_cache_tinylfu",))
    if not lru or not tinylfu:
        gate.fail("storage rows: block-cache policy rows missing — the "
                  "hit-rate measurement silently vanished")
    elif lru.get("hit_rate", -1) < 0 or tinylfu.get("hit_rate", -1) < 0:
        gate.fail("storage rows: block-cache hit rates unusable "
                  f"(lru {lru.get('hit_rate')}, tinylfu "
                  f"{tinylfu.get('hit_rate')})")
    elif tinylfu["hit_rate"] < lru["hit_rate"]:
        gate.fail(
            f"storage rows: TinyLFU hit rate {tinylfu['hit_rate']} fell "
            f"below LRU's {lru['hit_rate']} on the scan-polluted workload "
            "— admission stopped protecting the hot set")


def check_fig48(gate, base, fresh, min_speedup4):
    """Gate for the fig4_8 layout x workers interior sweep.

    Work counts (segments_expanded, heap_pops) are deterministic for a
    given dataset scale, so they are compared with strict equality against
    the scale-matched baseline section — a count drift means the search
    explored a different frontier, which is a correctness bug even when
    the region happens to match. Wall clocks are only compared within the
    fresh run (the w1/w4 parallel-efficiency floor), and only when the
    fresh host actually has >= 4 hardware threads."""
    key_fields = ("layout", "interior_workers")
    base_idx = index_rows(base.get("interior_sweep"), key_fields)
    fresh_idx = index_rows(fresh.get("interior_sweep"), key_fields)
    check_presence(gate, "fig4_8", base_idx, fresh_idx)

    for key, row in fresh_idx.items():
        if not row.get("identical", True):
            gate.fail(f"fig4_8 row {key}: identical=false — the interior "
                      "layout changed a computed region")
        base_row = base_idx.get(key)
        if base_row is None:
            continue
        for count in ("segments_expanded", "heap_pops"):
            if row.get(count) != base_row.get(count):
                gate.fail(
                    f"fig4_8 row {key}: {count} {row.get(count)} != baseline "
                    f"{base_row.get(count)} — the search explored a "
                    "different frontier")

    # Cross-layout count equality within the fresh run: csr must expand
    # exactly the frontier legacy does, at every worker count.
    for (layout, workers), row in fresh_idx.items():
        if layout == "legacy":
            continue
        legacy_row = fresh_idx.get(("legacy", workers))
        if legacy_row is None:
            continue
        for count in ("segments_expanded", "heap_pops"):
            if row.get(count) != legacy_row.get(count):
                gate.fail(
                    f"fig4_8 row ({layout}, {workers}): {count} "
                    f"{row.get(count)} != legacy's {legacy_row.get(count)} "
                    "at the same worker count")

    hw = fresh.get("hardware_threads", 0)
    w1 = fresh_idx.get(("csr", 1))
    w4 = fresh_idx.get(("csr", 4))
    if hw >= 4:
        if not w1 or not w4 or not w4.get("wall_ms"):
            gate.fail("fig4_8: csr 1/4-worker rows missing — cannot check "
                      "the parallel-efficiency floor")
        else:
            ratio = w1["wall_ms"] / w4["wall_ms"]
            if ratio < min_speedup4:
                gate.fail(
                    f"fig4_8: csr 4-worker speedup {ratio:.2f}x is below the "
                    f"{min_speedup4}x floor on a {hw}-thread host")
            else:
                gate.note(f"fig4_8: csr 4-worker speedup {ratio:.2f}x "
                          f"(floor {min_speedup4}x)")
    else:
        gate.note(f"fig4_8: speedup floor skipped — fresh host has "
                  f"{hw} hardware thread(s)")


def fig48_section_for_scale(scale):
    return ("fig4_8_mquery_executor" if scale == "full"
            else f"fig4_8_mquery_executor_{scale}")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_throughput.json")
    parser.add_argument("--fresh", required=True,
                        help="JSON written by this run's bench "
                             "(STRR_BENCH_JSON output)")
    parser.add_argument("--section", default="throughput_concurrent",
                        help="section name inside the committed baseline")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="max allowed relative regression of normalized "
                             "qps (default 0.25)")
    parser.add_argument("--fairness-tolerance", type=float, default=0.25,
                        help="max allowed WFQ weight-share deviation in the "
                             "fresh run (default 0.25; the bench itself "
                             "shape-checks 0.20 on the bench host)")
    parser.add_argument("--obs-overhead-tolerance", type=float, default=0.05,
                        help="max allowed qps cost of metrics+tracing, "
                             "measured within the fresh run as the obs/none "
                             "qps ratio per worker count (default 0.05)")
    parser.add_argument("--min-batch-ms", type=float, default=1.0,
                        help="skip qps comparison for rows whose baseline "
                             "batch_ms is below this (overhead-dominated "
                             "cache rows)")
    parser.add_argument("--fresh-fig48",
                        help="JSON written by this run's bench_fig4_8_mquery; "
                             "enables the layout-sweep gate (bit-identity, "
                             "strict work counts, parallel-efficiency floor). "
                             "The baseline section is picked by the fresh "
                             "file's 'scale' field")
    parser.add_argument("--min-speedup4", type=float, default=1.8,
                        help="minimum csr w1/w4 wall-clock ratio when the "
                             "fresh host has >= 4 hardware threads "
                             "(default 1.8)")
    parser.add_argument("--min-shard-speedup", type=float, default=1.5,
                        help="minimum 4-shard vs 1-shard qps ratio at 4 "
                             "clients when the fresh host has >= 4 hardware "
                             "threads (default 1.5)")
    parser.add_argument("--min-restart-speedup", type=float, default=1.25,
                        help="minimum full-replay vs checkpointed cold-"
                             "restart wall-clock ratio within the fresh run "
                             "(default 1.25; the bench itself shape-checks "
                             "the same floor on the bench host)")
    args = parser.parse_args()

    try:
        base = load_section(args.baseline, args.section)
        fresh = load_section(args.fresh, args.section)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"ERROR: {e}", file=sys.stderr)
        return 2

    gate = Gate()
    check_throughput_rows(gate, base, fresh, args.tolerance, args.min_batch_ms)
    check_obs_overhead(gate, fresh, args.obs_overhead_tolerance)
    check_tenant_rows(gate, base, fresh, args.fairness_tolerance)
    check_live_rows(gate, base, fresh, args.tolerance)
    check_shard_rows(gate, base, fresh, args.min_shard_speedup)
    check_storage_rows(gate, base, fresh, args.min_restart_speedup)

    if args.fresh_fig48:
        try:
            with open(args.fresh_fig48) as f:
                fresh48 = json.load(f)
            section = fig48_section_for_scale(fresh48.get("scale", "full"))
            base48 = load_section(args.baseline, section)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"ERROR: {e}", file=sys.stderr)
            return 2
        check_fig48(gate, base48, fresh48, args.min_speedup4)

    for note in gate.notes:
        print(f"NOTE: {note}")
    if gate.failures:
        print(f"\nFAIL: {len(gate.failures)} regression(s) vs "
              f"{args.baseline}:")
        for failure in gate.failures:
            print(f"  - {failure}")
        return 1
    print(f"OK: no bench regression vs {args.baseline} "
          f"(qps tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
