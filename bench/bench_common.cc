#include "bench/bench_common.h"

#include <cstdlib>
#include <filesystem>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace strr {
namespace bench {

namespace {

std::string CacheDir() {
  const char* env = std::getenv("STRR_BENCH_CACHE");
  if (env != nullptr && env[0] != '\0') return env;
  return "/tmp/strr_bench_cache";
}

bool SmallScale() {
  const char* env = std::getenv("STRR_BENCH_SCALE");
  return env != nullptr && std::string(env) == "small";
}

}  // namespace

DatasetOptions BenchScaleOptions() {
  if (SmallScale()) {
    DatasetOptions opt = TestDatasetOptions();
    opt.fleet.num_taxis = 80;
    opt.fleet.num_days = 15;
    return opt;
  }
  return BenchDatasetOptions();
}

StatusOr<Dataset> LoadOrBuildBenchDataset() {
  std::string dir = CacheDir() + (SmallScale() ? "/small" : "/full");
  if (DatasetExists(dir)) {
    Stopwatch watch;
    auto loaded = LoadDataset(dir);
    if (loaded.ok()) {
      std::fprintf(stderr, "# loaded cached bench dataset from %s (%.1fs)\n",
                   dir.c_str(), watch.ElapsedSeconds());
      return loaded;
    }
    std::fprintf(stderr, "# cache at %s unreadable (%s); rebuilding\n",
                 dir.c_str(), loaded.status().ToString().c_str());
  }
  Stopwatch watch;
  std::fprintf(stderr, "# generating bench dataset (cold cache)...\n");
  STRR_ASSIGN_OR_RETURN(Dataset dataset, BuildDataset(BenchScaleOptions()));
  std::fprintf(stderr, "# generated in %.1fs: %zu segments, %llu trajs\n",
               watch.ElapsedSeconds(), dataset.network.NumSegments(),
               static_cast<unsigned long long>(
                   dataset.store->NumTrajectories()));
  Status save = SaveDataset(dataset, dir);
  if (!save.ok()) {
    std::fprintf(stderr, "# warning: cache save failed: %s\n",
                 save.ToString().c_str());
  }
  return dataset;
}

StatusOr<std::unique_ptr<ReachabilityEngine>> BuildBenchEngine(
    const Dataset& dataset, int64_t delta_t_seconds, size_t cache_pages) {
  EngineOptions opt;
  opt.work_dir = CacheDir() + "/engine_dt" + std::to_string(delta_t_seconds) +
                 (SmallScale() ? "_small" : "_full");
  std::filesystem::create_directories(opt.work_dir);
  opt.delta_t_seconds = delta_t_seconds;
  opt.cache_pages = cache_pages;
  Stopwatch watch;
  STRR_ASSIGN_OR_RETURN(
      std::unique_ptr<ReachabilityEngine> engine,
      ReachabilityEngine::Build(dataset.network, *dataset.store, opt));
  std::fprintf(stderr, "# engine built (dt=%llds) in %.1fs\n",
               static_cast<long long>(delta_t_seconds),
               watch.ElapsedSeconds());
  return engine;
}

StatusOr<std::unique_ptr<BenchStack>> LoadBenchStack() {
  // Benches honor STRR_LOG_LEVEL (e.g. =info to watch engine build and
  // live-tier events during a long run).
  SetLogLevelFromEnv();
  auto stack = std::make_unique<BenchStack>();
  STRR_ASSIGN_OR_RETURN(stack->dataset, LoadOrBuildBenchDataset());
  STRR_ASSIGN_OR_RETURN(stack->engine, BuildBenchEngine(stack->dataset, 300));
  stack->query_location =
      PickBusyLocation(*stack->engine, stack->dataset, HMS(11));
  return stack;
}

XyPoint PickBusyLocation(const ReachabilityEngine& engine,
                         const Dataset& dataset, int64_t tod,
                         double radius_m) {
  const StIndex& index = engine.st_index();
  const RoadNetwork& net = engine.network();
  SlotId slot = index.SlotForTime(tod);
  // Busiest segment near the centre: count distinct active days * flux in
  // the slot across all days (one time-list read per candidate; this runs
  // once per bench binary).
  std::vector<std::pair<uint64_t, SegmentId>> scored;
  for (SegmentId s = 0; s < net.NumSegments(); ++s) {
    // Query locations are street addresses: skip limited-access viaducts
    // (the paper's downtown location is a surface street too).
    if (net.segment(s).level == RoadLevel::kHighway) continue;
    if (!index.HasTraffic(s, slot)) continue;
    XyPoint mid = net.segment(s).shape.Interpolate(net.segment(s).length / 2);
    if (Distance(mid, dataset.center) > radius_m) continue;
    auto lists = index.ReadTimeList(s, slot);
    if (!lists.ok()) continue;
    uint64_t active_days = 0, flux = 0;
    for (const auto& day : *lists) {
      if (!day.empty()) ++active_days;
      flux += day.size();
    }
    scored.emplace_back(active_days * 1000 + flux, s);
  }
  std::sort(scored.rbegin(), scored.rend());
  // Return the best candidate whose midpoint actually resolves back to it
  // (or its twin) through the spatial index — parallel geometry (e.g. a
  // viaduct over a street) can otherwise redirect the query to a different
  // road than the busy one we scored.
  for (const auto& [score, s] : scored) {
    XyPoint mid = net.segment(s).shape.Interpolate(net.segment(s).length / 2);
    auto located = index.LocateSegment(mid);
    if (!located.ok()) continue;
    if (*located == s || *located == net.segment(s).reverse_id) return mid;
  }
  return dataset.center;
}

void PrintRow(const std::vector<std::string>& cells) {
  for (const std::string& cell : cells) {
    std::printf("%-14s", cell.c_str());
  }
  std::printf("\n");
}

std::string Cell(double value, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

void ShapeCheck(const std::string& name, bool pass,
                const std::string& detail) {
  std::printf("# shape-check %-38s %s  (%s)\n", name.c_str(),
              pass ? "PASS" : "FAIL", detail.c_str());
}

StatusOr<RegionResult> ColdSQueryIndexed(ReachabilityEngine& engine,
                                         const SQuery& query) {
  // Warm run: materializes the lazy Con-Index tables this query touches
  // (offline index construction in the paper's model) so the measured run
  // times query processing only. The page cache is then dropped so the
  // measured run pays the trajectory I/O.
  STRR_ASSIGN_OR_RETURN(RegionResult warm, engine.SQueryIndexed(query));
  (void)warm;
  engine.ResetIoStats(/*drop_cache=*/true);
  return engine.SQueryIndexed(query);
}

StatusOr<RegionResult> ColdSQueryExhaustive(ReachabilityEngine& engine,
                                            const SQuery& query) {
  STRR_ASSIGN_OR_RETURN(RegionResult warm, engine.SQueryExhaustive(query));
  (void)warm;
  engine.ResetIoStats(/*drop_cache=*/true);
  return engine.SQueryExhaustive(query);
}

}  // namespace bench
}  // namespace strr
