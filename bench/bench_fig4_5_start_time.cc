// Figure 4.5 — Effect of the start time T over the day.
//
// (a) running time of SQMB+TBS for L = 5 and 10 min, hourly T sweep;
// (b) reachable road length over T.
//
// Expected shapes (paper): both metrics dip at the rush hours (~07-08 and
// ~18:00) because congestion shrinks the bounding regions, and follow the
// same pattern as each other.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace strr;        // NOLINT
using namespace strr::bench;  // NOLINT

int main() {
  auto maybe_stack = LoadBenchStack();
  if (!maybe_stack.ok()) {
    std::fprintf(stderr, "FATAL: %s\n",
                 maybe_stack.status().ToString().c_str());
    return 1;
  }
  BenchStack& stack = **maybe_stack;
  ReachabilityEngine& engine = *stack.engine;
  XyPoint loc = stack.query_location;

  std::printf("Figure 4.5(a,b): effect of start time (Prob=20%%)\n");
  PrintRow({"T", "L5_ms", "L10_ms", "len5_km", "len10_km", "L10_cone"});

  // Working-hours sweep (the synthetic fleet's day shift; the paper's taxis
  // run all day, ours park 00:00-06:00 which would show as zeros).
  std::vector<int> hours;
  for (int h = 7; h <= 22; ++h) hours.push_back(h);

  double rush_len = 0, midday_len = 0, night_len = 0;
  double rush_ms = 0, midday_ms = 0;
  for (int hour : hours) {
    SQuery q5{loc, HMS(hour), 300, 0.2};
    SQuery q10{loc, HMS(hour), 600, 0.2};
    auto r5 = ColdSQueryIndexed(engine, q5);
    auto r10 = ColdSQueryIndexed(engine, q10);
    if (!r5.ok() || !r10.ok()) {
      std::fprintf(stderr, "FATAL: query failed at T=%02d:00\n", hour);
      return 1;
    }
    PrintRow({FormatTimeOfDay(HMS(hour)), Cell(r5->stats.wall_ms, 2),
              Cell(r10->stats.wall_ms, 2),
              Cell(r5->total_length_m / 1000.0, 1),
              Cell(r10->total_length_m / 1000.0, 1),
              std::to_string(r10->stats.max_region_segments)});
    if (hour == 8 || hour == 18) {
      rush_len += r10->total_length_m;
      rush_ms += r10->stats.wall_ms;
    }
    if (hour == 11 || hour == 14) {
      midday_len += r10->total_length_m;
      midday_ms += r10->stats.wall_ms;
    }
    if (hour == 22) night_len = r10->total_length_m;
  }
  rush_len /= 2;
  midday_len /= 2;
  rush_ms /= 2;
  midday_ms /= 2;

  ShapeCheck("fig4.5.rush_hour_length_dip", rush_len < midday_len,
             "L=10 length rush " + Cell(rush_len / 1000, 1) + " km < midday " +
                 Cell(midday_len / 1000, 1) + " km");
  ShapeCheck("fig4.5.rush_hour_time_dip", rush_ms < midday_ms,
             "L=10 time rush " + Cell(rush_ms, 1) + " ms < midday " +
                 Cell(midday_ms, 1) + " ms");
  (void)night_len;
  return 0;
}
