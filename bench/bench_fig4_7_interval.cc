// Figure 4.7 — Processing time over different time intervals Δt.
//
// Sweeps Δt ∈ {1, 5, 10, 20} min (rebuilding the ST-Index/Con-Index per
// Δt, as the paper does: Δt is an index-construction knob), running
// SQMB+TBS at L = 5 and 10 min, with ES as the reference line.
//
// Expected shapes (paper): SQMB+TBS running time roughly flat across Δt
// and below ES.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace strr;        // NOLINT
using namespace strr::bench;  // NOLINT

int main() {
  auto dataset = LoadOrBuildBenchDataset();
  if (!dataset.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", dataset.status().ToString().c_str());
    return 1;
  }

  std::printf("Figure 4.7: processing time over time interval dt "
              "(T=11:00, Prob=20%%)\n");
  PrintRow({"dt(min)", "L5_ms", "L10_ms", "ES10_ms", "L10_lists",
            "ES10_lists"});

  std::vector<double> times10;
  std::vector<uint64_t> lists10;
  bool below_es = true;
  for (int dt_min : {1, 5, 10, 20}) {
    auto engine = BuildBenchEngine(*dataset, dt_min * 60);
    if (!engine.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", engine.status().ToString().c_str());
      return 1;
    }
    XyPoint loc = PickBusyLocation(**engine, *dataset, HMS(11));
    SQuery q5{loc, HMS(11), 300, 0.2};
    SQuery q10{loc, HMS(11), 600, 0.2};
    auto r5 = ColdSQueryIndexed(**engine, q5);
    auto r10 = ColdSQueryIndexed(**engine, q10);
    auto es10 = ColdSQueryExhaustive(**engine, q10);
    if (!r5.ok() || !r10.ok() || !es10.ok()) {
      std::fprintf(stderr, "FATAL: query failed at dt=%d\n", dt_min);
      return 1;
    }
    PrintRow({std::to_string(dt_min), Cell(r5->stats.wall_ms, 2),
              Cell(r10->stats.wall_ms, 2), Cell(es10->stats.wall_ms, 2),
              std::to_string(r10->stats.time_lists_read),
              std::to_string(es10->stats.time_lists_read)});
    times10.push_back(r10->stats.wall_ms);
    lists10.push_back(r10->stats.time_lists_read);
    // Gate only the sensible configurations Δt <= L: with Δt=20 > L=10 the
    // single hop expands a 20-minute cone for a 10-minute query (Algorithm
    // 1's quantization), which can cost more than ES's L-bounded cone.
    if (dt_min * 60 <= 600) {
      below_es = below_es && r10->stats.wall_ms <= es10->stats.wall_ms * 1.25;
    }
  }

  double tmin = times10[0], tmax = times10[0];
  for (double t : times10) {
    tmin = std::min(tmin, t);
    tmax = std::max(tmax, t);
  }
  uint64_t lmin = lists10[0], lmax = lists10[0];
  for (uint64_t l : lists10) {
    lmin = std::min(lmin, l);
    lmax = std::max(lmax, l);
  }
  // Δt is a granularity knob, not a semantic one: the deterministic work
  // metric (time lists read) stays within the same order of magnitude
  // (Δt=20 > L=10 pays a one-hop cone overshoot — a quantization the
  // paper's Algorithm 1 shares). Wall time is reported but not gated; it
  // is too noisy at millisecond scale to assert a tight band on.
  ShapeCheck("fig4.7.work_stable_in_dt",
             lmax <= 8 * lmin + 8,
             "L=10 lists " + std::to_string(lmin) + ".." +
                 std::to_string(lmax) + ", times " + Cell(tmin, 2) + ".." +
                 Cell(tmax, 2) + " ms");
  ShapeCheck("fig4.7.at_or_below_es", below_es,
             "SQMB+TBS time <= ~ES for every dt <= L");
  return 0;
}
