// Micro-benchmarks (google-benchmark) for the index/storage components:
// R-tree build & queries, B+-tree ops, network expansion, posting store
// reads, probability intersection. These are the inner loops every query
// pays; the figure benches measure the end-to-end behaviour.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "index/bplus_tree.h"
#include "index/rtree.h"
#include "query/probability.h"
#include "roadnet/city_generator.h"
#include "roadnet/expansion.h"
#include "storage/posting_store.h"
#include "util/rng.h"

namespace strr {
namespace {

std::vector<RTree::Entry> MakeEntries(size_t n) {
  Rng rng(42);
  std::vector<RTree::Entry> entries;
  entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    double x = rng.Uniform(0, 20000), y = rng.Uniform(0, 14000);
    entries.push_back({Mbr(x, y, x + 400, y + 400), i});
  }
  return entries;
}

void BM_RTreeBulkLoad(benchmark::State& state) {
  auto entries = MakeEntries(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    RTree tree(16);
    tree.BulkLoad(entries);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(1000)->Arg(10000);

void BM_RTreeInsert(benchmark::State& state) {
  auto entries = MakeEntries(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    RTree tree(16);
    for (const auto& e : entries) tree.Insert(e.box, e.value);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeInsert)->Arg(1000)->Arg(5000);

void BM_RTreeSearch(benchmark::State& state) {
  auto entries = MakeEntries(10000);
  RTree tree(16);
  tree.BulkLoad(entries);
  Rng rng(7);
  for (auto _ : state) {
    double x = rng.Uniform(0, 20000), y = rng.Uniform(0, 14000);
    auto hits = tree.Search(Mbr(x, y, x + 1500, y + 1500));
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_RTreeSearch);

void BM_RTreeNearest(benchmark::State& state) {
  auto entries = MakeEntries(10000);
  RTree tree(16);
  tree.BulkLoad(entries);
  Rng rng(7);
  for (auto _ : state) {
    XyPoint p{rng.Uniform(0, 20000), rng.Uniform(0, 14000)};
    auto hits = tree.Nearest(p, 8);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_RTreeNearest);

void BM_BPlusTreeInsert(benchmark::State& state) {
  Rng rng(3);
  std::vector<int64_t> keys;
  for (int i = 0; i < state.range(0); ++i) {
    keys.push_back(rng.UniformInt(0, 1 << 26));
  }
  for (auto _ : state) {
    BPlusTree tree(32);
    for (int64_t k : keys) tree.Insert(k, 1);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BPlusTreeInsert)->Arg(10000);

void BM_BPlusTreeFloor(benchmark::State& state) {
  BPlusTree tree(32);
  for (int64_t k = 0; k < 86400; k += 300) {
    tree.Insert(k, static_cast<uint32_t>(k / 300));
  }
  Rng rng(5);
  for (auto _ : state) {
    auto hit = tree.Floor(rng.UniformInt(0, 86399));
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_BPlusTreeFloor);

void BM_NetworkExpansion(benchmark::State& state) {
  CityOptions opt;
  opt.grid_cols = 18;
  opt.grid_rows = 13;
  auto city = GenerateCity(opt);
  const RoadNetwork& net = city->network;
  SpeedFn speeds = FreeFlowSpeeds(net);
  Rng rng(11);
  const double budget = static_cast<double>(state.range(0));
  for (auto _ : state) {
    SegmentId src =
        static_cast<SegmentId>(rng.UniformInt(0, net.NumSegments() - 1));
    auto hits = ExpandFrom(net, src, budget, speeds);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_NetworkExpansion)->Arg(300)->Arg(1200);

void BM_PostingStoreGet(benchmark::State& state) {
  std::string path = std::filesystem::temp_directory_path() /
                     "strr_micro_postings.bin";
  constexpr int kEntries = 5000;
  {
    auto builder = PostingStoreBuilder::Create(path);
    Rng rng(9);
    for (int i = 0; i < kEntries; ++i) {
      std::string blob(static_cast<size_t>(rng.UniformInt(20, 400)), 'x');
      (void)(*builder)->Add(static_cast<PostingKey>(i), blob);
    }
    (void)(*builder)->Finish();
  }
  auto store = PostingStore::Open(path, static_cast<size_t>(state.range(0)));
  Rng rng(13);
  for (auto _ : state) {
    auto blob =
        (*store)->Get(static_cast<PostingKey>(rng.UniformInt(0, kEntries - 1)));
    benchmark::DoNotOptimize(blob);
  }
  state.counters["hit_rate"] =
      static_cast<double>((*store)->stats().cache_hits) /
      std::max<uint64_t>(1, (*store)->stats().TotalRequests());
}
BENCHMARK(BM_PostingStoreGet)->Arg(16)->Arg(4096);

void BM_SortedIntersects(benchmark::State& state) {
  Rng rng(17);
  std::vector<TrajectoryId> a, b;
  for (int i = 0; i < state.range(0); ++i) {
    a.push_back(static_cast<TrajectoryId>(rng.UniformInt(0, 1 << 20)));
    b.push_back(static_cast<TrajectoryId>(rng.UniformInt(0, 1 << 20)));
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(SortedIntersects(a, b));
  }
}
BENCHMARK(BM_SortedIntersects)->Arg(32)->Arg(512);

}  // namespace
}  // namespace strr

BENCHMARK_MAIN();
