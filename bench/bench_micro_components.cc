// Micro-benchmarks (google-benchmark) for the index/storage components:
// R-tree build & queries, B+-tree ops, network expansion, posting store
// reads, probability intersection. These are the inner loops every query
// pays; the figure benches measure the end-to-end behaviour.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <unordered_map>

#include "index/bplus_tree.h"
#include "index/rtree.h"
#include "query/probability.h"
#include "roadnet/city_generator.h"
#include "roadnet/expansion.h"
#include "roadnet/segment_grid.h"
#include "search/expansion_context.h"
#include "search/frontier_engine.h"
#include "storage/posting_store.h"
#include "util/flat_hash.h"
#include "util/rng.h"

namespace strr {
namespace {

std::vector<RTree::Entry> MakeEntries(size_t n) {
  Rng rng(42);
  std::vector<RTree::Entry> entries;
  entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    double x = rng.Uniform(0, 20000), y = rng.Uniform(0, 14000);
    entries.push_back({Mbr(x, y, x + 400, y + 400), i});
  }
  return entries;
}

void BM_RTreeBulkLoad(benchmark::State& state) {
  auto entries = MakeEntries(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    RTree tree(16);
    tree.BulkLoad(entries);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(1000)->Arg(10000);

void BM_RTreeInsert(benchmark::State& state) {
  auto entries = MakeEntries(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    RTree tree(16);
    for (const auto& e : entries) tree.Insert(e.box, e.value);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeInsert)->Arg(1000)->Arg(5000);

void BM_RTreeSearch(benchmark::State& state) {
  auto entries = MakeEntries(10000);
  RTree tree(16);
  tree.BulkLoad(entries);
  Rng rng(7);
  for (auto _ : state) {
    double x = rng.Uniform(0, 20000), y = rng.Uniform(0, 14000);
    auto hits = tree.Search(Mbr(x, y, x + 1500, y + 1500));
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_RTreeSearch);

void BM_RTreeNearest(benchmark::State& state) {
  auto entries = MakeEntries(10000);
  RTree tree(16);
  tree.BulkLoad(entries);
  Rng rng(7);
  for (auto _ : state) {
    XyPoint p{rng.Uniform(0, 20000), rng.Uniform(0, 14000)};
    auto hits = tree.Nearest(p, 8);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_RTreeNearest);

void BM_BPlusTreeInsert(benchmark::State& state) {
  Rng rng(3);
  std::vector<int64_t> keys;
  for (int i = 0; i < state.range(0); ++i) {
    keys.push_back(rng.UniformInt(0, 1 << 26));
  }
  for (auto _ : state) {
    BPlusTree tree(32);
    for (int64_t k : keys) tree.Insert(k, 1);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BPlusTreeInsert)->Arg(10000);

void BM_BPlusTreeFloor(benchmark::State& state) {
  BPlusTree tree(32);
  for (int64_t k = 0; k < 86400; k += 300) {
    tree.Insert(k, static_cast<uint32_t>(k / 300));
  }
  Rng rng(5);
  for (auto _ : state) {
    auto hit = tree.Floor(rng.UniformInt(0, 86399));
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_BPlusTreeFloor);

void BM_NetworkExpansion(benchmark::State& state) {
  CityOptions opt;
  opt.grid_cols = 18;
  opt.grid_rows = 13;
  auto city = GenerateCity(opt);
  const RoadNetwork& net = city->network;
  SpeedFn speeds = FreeFlowSpeeds(net);
  Rng rng(11);
  const double budget = static_cast<double>(state.range(0));
  for (auto _ : state) {
    SegmentId src =
        static_cast<SegmentId>(rng.UniformInt(0, net.NumSegments() - 1));
    auto hits = ExpandFrom(net, src, budget, speeds);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_NetworkExpansion)->Arg(300)->Arg(1200);

void BM_PostingStoreGet(benchmark::State& state) {
  std::string path = std::filesystem::temp_directory_path() /
                     "strr_micro_postings.bin";
  constexpr int kEntries = 5000;
  {
    auto builder = PostingStoreBuilder::Create(path);
    Rng rng(9);
    for (int i = 0; i < kEntries; ++i) {
      std::string blob(static_cast<size_t>(rng.UniformInt(20, 400)), 'x');
      (void)(*builder)->Add(static_cast<PostingKey>(i), blob);
    }
    (void)(*builder)->Finish();
  }
  auto store = PostingStore::Open(path, static_cast<size_t>(state.range(0)));
  Rng rng(13);
  for (auto _ : state) {
    auto blob =
        (*store)->Get(static_cast<PostingKey>(rng.UniformInt(0, kEntries - 1)));
    benchmark::DoNotOptimize(blob);
  }
  state.counters["hit_rate"] =
      static_cast<double>((*store)->stats().cache_hits) /
      std::max<uint64_t>(1, (*store)->stats().TotalRequests());
}
BENCHMARK(BM_PostingStoreGet)->Arg(16)->Arg(4096);

// --- Path-cache layout: node-based unordered_map vs FlatU64Map ------------
// The Router memoizes (source << 32 | target) -> path. Both benches fill
// the same keys with small paths, then hammer hit lookups — the hot case.

std::vector<uint64_t> MakePathKeys(size_t n) {
  Rng rng(21);
  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back((static_cast<uint64_t>(rng.UniformInt(0, 1 << 14)) << 32) |
                   static_cast<uint64_t>(rng.UniformInt(0, 1 << 14)));
  }
  return keys;
}

std::vector<SegmentId> MakePath(Rng& rng) {
  std::vector<SegmentId> path(static_cast<size_t>(rng.UniformInt(4, 24)));
  for (SegmentId& s : path) {
    s = static_cast<SegmentId>(rng.UniformInt(0, 1 << 16));
  }
  return path;
}

void BM_UnorderedPathCacheLookup(benchmark::State& state) {
  auto keys = MakePathKeys(static_cast<size_t>(state.range(0)));
  Rng rng(22);
  std::unordered_map<uint64_t, std::vector<SegmentId>> cache;
  for (uint64_t k : keys) cache.emplace(k, MakePath(rng));
  Rng pick(23);
  for (auto _ : state) {
    auto it = cache.find(keys[static_cast<size_t>(
        pick.UniformInt(0, static_cast<int64_t>(keys.size()) - 1))]);
    benchmark::DoNotOptimize(it);
  }
}
BENCHMARK(BM_UnorderedPathCacheLookup)->Arg(1024)->Arg(65536);

void BM_FlatPathCacheLookup(benchmark::State& state) {
  auto keys = MakePathKeys(static_cast<size_t>(state.range(0)));
  Rng rng(22);
  FlatU64Map<std::vector<SegmentId>> cache;
  for (uint64_t k : keys) cache.Emplace(k, MakePath(rng));
  Rng pick(23);
  for (auto _ : state) {
    const std::vector<SegmentId>* hit = cache.Find(keys[static_cast<size_t>(
        pick.UniformInt(0, static_cast<int64_t>(keys.size()) - 1))]);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_FlatPathCacheLookup)->Arg(1024)->Arg(65536);

// --- Cell-directory layout: unordered_map buckets vs frozen sorted CSR ----
// SegmentGrid froze its cell directory into sorted keys + offsets; the
// reference bench replicates the old node-based layout over the identical
// (cell, segment) pairs so the comparison isolates the directory walk.

struct GridFixture {
  City city;
  std::unique_ptr<SegmentGrid> grid;
  std::unordered_map<int64_t, std::vector<SegmentId>> reference_cells;
  double cell = 250.0;

  GridFixture() {
    CityOptions opt;
    opt.grid_cols = 18;
    opt.grid_rows = 13;
    city = std::move(*GenerateCity(opt));
    grid = std::make_unique<SegmentGrid>(city.network, cell);
    for (const RoadSegment& seg : city.network.segments()) {
      const Mbr& box = seg.bounding_box();
      for (int cx = Cell(box.min_x()); cx <= Cell(box.max_x()); ++cx) {
        for (int cy = Cell(box.min_y()); cy <= Cell(box.max_y()); ++cy) {
          reference_cells[Key(cx, cy)].push_back(seg.id);
        }
      }
    }
  }

  int Cell(double v) const { return static_cast<int>(std::floor(v / cell)); }
  static int64_t Key(int cx, int cy) {
    return (static_cast<int64_t>(cx) << 32) ^ (cy & 0xffffffffLL);
  }
};

const GridFixture& SharedGrid() {
  static GridFixture fixture;
  return fixture;
}

void BM_UnorderedGridCellProbe(benchmark::State& state) {
  const GridFixture& fx = SharedGrid();
  Mbr box = fx.city.network.BoundingBox();
  Rng rng(29);
  for (auto _ : state) {
    int cx = fx.Cell(rng.Uniform(box.min_x(), box.max_x()));
    int cy = fx.Cell(rng.Uniform(box.min_y(), box.max_y()));
    uint64_t touched = 0;
    auto it = fx.reference_cells.find(GridFixture::Key(cx, cy));
    if (it != fx.reference_cells.end()) {
      for (SegmentId id : it->second) touched += id;
    }
    benchmark::DoNotOptimize(touched);
  }
}
BENCHMARK(BM_UnorderedGridCellProbe);

void BM_FlatGridWithinRadius(benchmark::State& state) {
  const GridFixture& fx = SharedGrid();
  Mbr box = fx.city.network.BoundingBox();
  Rng rng(29);
  for (auto _ : state) {
    XyPoint p{rng.Uniform(box.min_x(), box.max_x()),
              rng.Uniform(box.min_y(), box.max_y())};
    auto hits = fx.grid->WithinRadius(p, 120.0);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_FlatGridWithinRadius);

// --- Frontier expansion: legacy per-segment vectors vs flat CSR -----------
// The FrontierEngine inner loop with the layout knob off vs on (prefetch
// rides along with the CSR walk, matching the executor's csr profile).

void RunExpansionBench(benchmark::State& state, bool flat) {
  const GridFixture& fx = SharedGrid();
  const RoadNetwork& net = fx.city.network;
  SpeedFn speeds = FreeFlowSpeeds(net);
  FrontierRuntime runtime;
  runtime.flat_adjacency = flat;
  runtime.prefetch = flat;
  FrontierEngine engine(net, runtime);
  ExpansionContext ctx;
  Rng rng(31);
  const double budget = static_cast<double>(state.range(0));
  for (auto _ : state) {
    SegmentId src =
        static_cast<SegmentId>(rng.UniformInt(0, net.NumSegments() - 1));
    FrontierEngine::TimedRequest request;
    request.sources = std::span<const SegmentId>(&src, 1);
    request.budget = budget;
    engine.RunTimed(ctx, request, speeds);
    benchmark::DoNotOptimize(ctx.reached().size());
  }
}

void BM_NetworkExpansionLegacy(benchmark::State& state) {
  RunExpansionBench(state, /*flat=*/false);
}
BENCHMARK(BM_NetworkExpansionLegacy)->Arg(300)->Arg(1200);

void BM_NetworkExpansionCsr(benchmark::State& state) {
  RunExpansionBench(state, /*flat=*/true);
}
BENCHMARK(BM_NetworkExpansionCsr)->Arg(300)->Arg(1200);

void BM_SortedIntersects(benchmark::State& state) {
  Rng rng(17);
  std::vector<TrajectoryId> a, b;
  for (int i = 0; i < state.range(0); ++i) {
    a.push_back(static_cast<TrajectoryId>(rng.UniformInt(0, 1 << 20)));
    b.push_back(static_cast<TrajectoryId>(rng.UniformInt(0, 1 << 20)));
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(SortedIntersects(a, b));
  }
}
BENCHMARK(BM_SortedIntersects)->Arg(32)->Arg(512);

}  // namespace
}  // namespace strr

BENCHMARK_MAIN();
