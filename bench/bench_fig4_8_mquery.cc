// Figure 4.8 — m-query: MQMB+TBS vs repeated SQMB+TBS, executor edition.
//
// (a) running time over duration L for a 3-location m-query;
// (b) running time over the number of locations n ∈ {1..9}, L = 20 min;
// (c) layout x workers interior sweep — the same MQMB plan executed with
//     layout ∈ {legacy, csr} x interior_workers ∈ {1, 2, 4, 8}. The csr
//     layout turns on the whole raw-speed interior (flat CSR adjacency +
//     prefetch + locality-aware chunking + parallel TBS); every row is
//     checked bit-identical against the legacy 1-worker reference and the
//     wall clock, segments_expanded and heap_pops are recorded per row.
//     csr_speedup_w1 (single-thread CSR vs legacy margin) goes into the
//     committed baseline so check_regression.py can hold the line.
//
// Unlike the original facade version, every query here is planned ONCE
// via QueryPlanner and executed through QueryExecutor (the production
// plan -> execute path), so strategy comparisons reuse identical resolved
// plans and the front-door stats machinery is what gets measured.
//
// Expected shapes (paper): MQMB+TBS beats repeated s-queries for n >= 2
// and is slightly slower at n = 1 (the extra overlap-elimination stage);
// repeated s-query cost grows ~linearly in n while MQMB flattens out.
//
// Set STRR_BENCH_JSON=<path> to record the interior sweep as JSON — the
// committed BENCH_throughput.json carries it under "fig4_8_mquery_executor".
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/query_executor.h"
#include "query/query_plan.h"
#include "util/stopwatch.h"

using namespace strr;        // NOLINT
using namespace strr::bench;  // NOLINT

namespace {

/// n spread-out query locations: the busy downtown spot plus points spaced
/// around it at 25-45% of the city span.
std::vector<XyPoint> MakeLocations(const BenchStack& stack, int n) {
  std::vector<XyPoint> out;
  Mbr box = stack.dataset.network.BoundingBox();
  out.push_back(stack.query_location);
  for (int i = 1; i < n; ++i) {
    double angle = 2.0 * M_PI * i / 9.0;
    double rx = box.Width() * (0.18 + 0.04 * (i % 3));
    double ry = box.Height() * (0.18 + 0.04 * ((i + 1) % 3));
    out.push_back({stack.dataset.center.x + std::cos(angle) * rx,
                   stack.dataset.center.y + std::sin(angle) * ry});
  }
  return out;
}

MQuery MakeQuery(const BenchStack& stack, int n, int64_t duration) {
  MQuery q;
  q.locations = MakeLocations(stack, n);
  q.start_tod = HMS(10);
  q.duration = duration;
  q.prob = 0.2;
  return q;
}

/// Plans once, runs warm + timed through the executor with a cold page
/// cache per timed run (same protocol the facade benches used).
StatusOr<RegionResult> TimedExecute(ReachabilityEngine& engine,
                                    QueryExecutor& executor,
                                    const QueryPlan& plan) {
  engine.ResetIoStats(true);
  auto warm = executor.Execute(plan);
  if (!warm.ok()) return warm;
  engine.ResetIoStats(true);
  return executor.Execute(plan);
}

struct SweepRow {
  const char* layout = "legacy";
  int workers = 0;
  double wall_ms = 0.0;
  double speedup = 1.0;  // vs the same layout's 1-worker row
  uint64_t parallel_rounds = 0;
  uint64_t segments_expanded = 0;
  uint64_t heap_pops = 0;
  bool identical = true;
};

}  // namespace

int main() {
  auto maybe_stack = LoadBenchStack();
  if (!maybe_stack.ok()) {
    std::fprintf(stderr, "FATAL: %s\n",
                 maybe_stack.status().ToString().c_str());
    return 1;
  }
  BenchStack& stack = **maybe_stack;
  ReachabilityEngine& engine = *stack.engine;
  const QueryPlanner& planner = engine.planner();
  QueryExecutor& executor = engine.executor();

  std::printf("Figure 4.8(a): 3-location m-query over duration "
              "(T=10:00, Prob=20%%, plan->execute path)\n");
  PrintRow({"L(min)", "mq_ms", "rep_ms", "mq_lists", "rep_lists",
            "mq_len_km"});
  bool mq_wins_duration = true;
  for (int minutes = 5; minutes <= 35; minutes += 5) {
    MQuery q = MakeQuery(stack, 3, minutes * 60);
    auto mq_plan = planner.PlanMQuery(q, QueryStrategy::kIndexed);
    auto rep_plan = planner.PlanMQuery(q, QueryStrategy::kRepeatedS);
    if (!mq_plan.ok() || !rep_plan.ok()) {
      std::fprintf(stderr, "FATAL: planning failed at L=%d\n", minutes);
      return 1;
    }
    auto mq = TimedExecute(engine, executor, *mq_plan);
    auto rep = TimedExecute(engine, executor, *rep_plan);
    if (!mq.ok() || !rep.ok()) {
      std::fprintf(stderr, "FATAL at L=%d\n", minutes);
      return 1;
    }
    PrintRow({std::to_string(minutes), Cell(mq->stats.wall_ms, 2),
              Cell(rep->stats.wall_ms, 2),
              std::to_string(mq->stats.time_lists_read),
              std::to_string(rep->stats.time_lists_read),
              Cell(mq->total_length_m / 1000.0, 1)});
    if (minutes >= 15 &&
        mq->stats.time_lists_read > rep->stats.time_lists_read) {
      mq_wins_duration = false;
    }
  }
  ShapeCheck("fig4.8a.mqmb_fewer_lists", mq_wins_duration,
             "MQMB reads fewer time lists than 3x SQMB for L >= 15");

  std::printf("\nFigure 4.8(b): m-query over #locations "
              "(T=10:00, L=20min, Prob=20%%, plan->execute path)\n");
  PrintRow({"n", "mq_ms", "rep_ms", "mq_lists", "rep_lists"});
  double rep1 = 0, rep9 = 0, mq1 = 0, mq9 = 0;
  bool mq_wins_counts = true;
  for (int n = 1; n <= 9; n += 2) {
    MQuery q = MakeQuery(stack, n, 1200);
    auto mq_plan = planner.PlanMQuery(q, QueryStrategy::kIndexed);
    auto rep_plan = planner.PlanMQuery(q, QueryStrategy::kRepeatedS);
    if (!mq_plan.ok() || !rep_plan.ok()) {
      std::fprintf(stderr, "FATAL: planning failed at n=%d\n", n);
      return 1;
    }
    auto mq = TimedExecute(engine, executor, *mq_plan);
    auto rep = TimedExecute(engine, executor, *rep_plan);
    if (!mq.ok() || !rep.ok()) {
      std::fprintf(stderr, "FATAL at n=%d\n", n);
      return 1;
    }
    PrintRow({std::to_string(n), Cell(mq->stats.wall_ms, 2),
              Cell(rep->stats.wall_ms, 2),
              std::to_string(mq->stats.time_lists_read),
              std::to_string(rep->stats.time_lists_read)});
    if (n == 1) {
      rep1 = rep->stats.wall_ms;
      mq1 = mq->stats.wall_ms;
    }
    if (n == 9) {
      rep9 = rep->stats.wall_ms;
      mq9 = mq->stats.wall_ms;
    }
    if (n >= 3 && mq->stats.time_lists_read > rep->stats.time_lists_read) {
      mq_wins_counts = false;
    }
  }

  ShapeCheck("fig4.8b.mqmb_fewer_lists", mq_wins_counts,
             "MQMB reads fewer time lists than n x SQMB for n >= 3");
  ShapeCheck("fig4.8b.repeated_grows_faster",
             (rep9 - rep1) > (mq9 - mq1),
             "repeated s-query grows " + Cell(rep9 - rep1, 1) +
                 " ms (1->9 locs) vs MQMB " + Cell(mq9 - mq1, 1) + " ms");

  // --- (c) layout x workers interior sweep ----------------------------------
  std::printf("\nFigure 4.8(c): MQMB interior, layout x workers "
              "(5 locations, T=10:00, L=20min, median of 3)\n");
  PrintRow({"layout", "workers", "wall_ms", "speedup", "par_rounds",
            "expanded", "heap_pops", "identical"});
  std::vector<SweepRow> sweep;
  {
    MQuery q = MakeQuery(stack, 5, 1200);
    auto plan = planner.PlanMQuery(q, QueryStrategy::kIndexed);
    if (!plan.ok()) {
      std::fprintf(stderr, "FATAL: interior sweep planning failed\n");
      return 1;
    }
    std::vector<SegmentId> reference_segments;
    for (const char* layout : {"legacy", "csr"}) {
      const bool csr = std::string(layout) == "csr";
      double base_ms = 0.0;
      for (int workers : {1, 2, 4, 8}) {
        auto sweep_exec = engine.MakeExecutor(
            {.num_threads = 1,
             .interior_workers = workers,
             .interior_flat_adjacency = csr,
             .interior_prefetch = csr,
             .interior_locality_chunking = csr,
             .parallel_tbs = csr});
        // Warm lazy Con-Index tables + page cache once per executor.
        auto warm = sweep_exec->Execute(*plan);
        if (!warm.ok()) {
          std::fprintf(stderr, "FATAL: interior sweep warm-up failed\n");
          return 1;
        }
        std::vector<double> times;
        SweepRow row;
        row.layout = layout;
        row.workers = workers;
        for (int run = 0; run < 3; ++run) {
          Stopwatch watch;
          auto result = sweep_exec->Execute(*plan);
          times.push_back(watch.ElapsedMillis());
          if (!result.ok()) {
            std::fprintf(stderr, "FATAL: interior sweep run failed\n");
            return 1;
          }
          row.parallel_rounds = result->stats.parallel_rounds;
          row.segments_expanded = result->stats.segments_expanded;
          row.heap_pops = result->stats.heap_pops;
          if (!csr && workers == 1 && run == 0) {
            reference_segments = result->segments;
          }
          if (result->segments != reference_segments) row.identical = false;
        }
        std::sort(times.begin(), times.end());
        row.wall_ms = times[1];
        if (workers == 1) base_ms = row.wall_ms;
        row.speedup = row.wall_ms > 0.0 ? base_ms / row.wall_ms : 0.0;
        PrintRow({row.layout, std::to_string(row.workers),
                  Cell(row.wall_ms, 2), Cell(row.speedup, 2),
                  std::to_string(row.parallel_rounds),
                  std::to_string(row.segments_expanded),
                  std::to_string(row.heap_pops),
                  row.identical ? "yes" : "NO"});
        if (!row.identical) {
          std::fprintf(stderr,
                       "FATAL: %s interior diverged at %d workers\n", layout,
                       workers);
          return 1;
        }
        sweep.push_back(row);
      }
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  auto find_row = [&sweep](const char* layout, int workers) -> const SweepRow* {
    for (const SweepRow& r : sweep) {
      if (std::string(r.layout) == layout && r.workers == workers) return &r;
    }
    return nullptr;
  };
  const SweepRow* legacy_w1 = find_row("legacy", 1);
  const SweepRow* csr_w1 = find_row("csr", 1);
  const SweepRow* csr_w4 = find_row("csr", 4);
  const double csr_speedup_w1 =
      (legacy_w1 && csr_w1 && csr_w1->wall_ms > 0.0)
          ? legacy_w1->wall_ms / csr_w1->wall_ms
          : 0.0;
  ShapeCheck("fig4.8c.layouts_bit_identical", true,
             "regions bit-identical across legacy/csr x 1/2/4/8 workers");
  ShapeCheck("fig4.8c.csr_counts_match_legacy",
             legacy_w1 && csr_w1 &&
                 legacy_w1->segments_expanded == csr_w1->segments_expanded &&
                 legacy_w1->heap_pops == csr_w1->heap_pops,
             "csr expands the same frontier (expanded/heap_pops equal)");
  ShapeCheck("fig4.8c.csr_w1_margin", csr_speedup_w1 > 0.0,
             "single-thread csr vs legacy: " + Cell(csr_speedup_w1, 2) + "x");
  if (hw >= 4) {
    const double speedup4 = csr_w4 ? csr_w4->speedup : 0.0;
    ShapeCheck("fig4.8c.parallel_interior_speedup", speedup4 >= 1.1,
               "4-worker csr interior speedup " + Cell(speedup4, 2) + "x");
  } else {
    ShapeCheck("fig4.8c.parallel_interior_speedup", true,
               "skipped: host has " + std::to_string(hw) +
                   " hardware thread(s)");
  }

  if (const char* json_path = std::getenv("STRR_BENCH_JSON")) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", json_path);
      return 1;
    }
    const char* scale_env = std::getenv("STRR_BENCH_SCALE");
    const std::string scale =
        (scale_env != nullptr && scale_env[0] != '\0') ? scale_env : "full";
    std::fprintf(f, "{\n  \"bench\": \"fig4_8_mquery_executor\",\n");
    std::fprintf(f, "  \"scale\": \"%s\",\n", scale.c_str());
    std::fprintf(f, "  \"hardware_threads\": %u,\n", hw);
    std::fprintf(f, "  \"csr_speedup_w1\": %.2f,\n", csr_speedup_w1);
    std::fprintf(f,
                 "  \"query\": {\"locations\": 5, \"duration_s\": 1200, "
                 "\"start\": \"10:00\", \"prob\": 0.2},\n");
    std::fprintf(f, "  \"interior_sweep\": [\n");
    for (size_t i = 0; i < sweep.size(); ++i) {
      const SweepRow& r = sweep[i];
      std::fprintf(
          f,
          "    {\"layout\": \"%s\", \"interior_workers\": %d, "
          "\"wall_ms\": %.2f, \"speedup\": %.2f, \"parallel_rounds\": %llu, "
          "\"segments_expanded\": %llu, \"heap_pops\": %llu, "
          "\"identical\": %s}%s\n",
          r.layout, r.workers, r.wall_ms, r.speedup,
          static_cast<unsigned long long>(r.parallel_rounds),
          static_cast<unsigned long long>(r.segments_expanded),
          static_cast<unsigned long long>(r.heap_pops),
          r.identical ? "true" : "false", i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "# wrote %s\n", json_path);
  }
  return 0;
}
