// Figure 4.8 — m-query: MQMB+TBS vs repeated SQMB+TBS.
//
// (a) running time over duration L for a 3-location m-query;
// (b) running time over the number of locations n ∈ {1..9}, L = 20 min.
//
// Expected shapes (paper): MQMB+TBS beats repeated s-queries for n >= 2
// and is slightly slower at n = 1 (the extra overlap-elimination stage);
// repeated s-query cost grows ~linearly in n while MQMB flattens out.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace strr;        // NOLINT
using namespace strr::bench;  // NOLINT

namespace {

/// n spread-out query locations: the busy downtown spot plus points spaced
/// around it at 25-45% of the city span.
std::vector<XyPoint> MakeLocations(const BenchStack& stack, int n) {
  std::vector<XyPoint> out;
  Mbr box = stack.dataset.network.BoundingBox();
  out.push_back(stack.query_location);
  for (int i = 1; i < n; ++i) {
    double angle = 2.0 * M_PI * i / 9.0;
    double rx = box.Width() * (0.18 + 0.04 * (i % 3));
    double ry = box.Height() * (0.18 + 0.04 * ((i + 1) % 3));
    out.push_back({stack.dataset.center.x + std::cos(angle) * rx,
                   stack.dataset.center.y + std::sin(angle) * ry});
  }
  return out;
}

}  // namespace

int main() {
  auto maybe_stack = LoadBenchStack();
  if (!maybe_stack.ok()) {
    std::fprintf(stderr, "FATAL: %s\n",
                 maybe_stack.status().ToString().c_str());
    return 1;
  }
  BenchStack& stack = **maybe_stack;
  ReachabilityEngine& engine = *stack.engine;

  std::printf("Figure 4.8(a): 3-location m-query over duration "
              "(T=10:00, Prob=20%%)\n");
  PrintRow({"L(min)", "mq_ms", "rep_ms", "mq_lists", "rep_lists",
            "mq_len_km"});
  bool mq_wins_duration = true;
  for (int minutes = 5; minutes <= 35; minutes += 5) {
    MQuery q;
    q.locations = MakeLocations(stack, 3);
    q.start_tod = HMS(10);
    q.duration = minutes * 60;
    q.prob = 0.2;
    engine.ResetIoStats(true);
    auto warm_m = engine.MQueryIndexed(q);
    engine.ResetIoStats(true);
    auto mq = engine.MQueryIndexed(q);
    engine.ResetIoStats(true);
    auto warm_r = engine.MQueryRepeatedSQuery(q);
    engine.ResetIoStats(true);
    auto rep = engine.MQueryRepeatedSQuery(q);
    if (!mq.ok() || !rep.ok() || !warm_m.ok() || !warm_r.ok()) {
      std::fprintf(stderr, "FATAL at L=%d\n", minutes);
      return 1;
    }
    PrintRow({std::to_string(minutes), Cell(mq->stats.wall_ms, 2),
              Cell(rep->stats.wall_ms, 2),
              std::to_string(mq->stats.time_lists_read),
              std::to_string(rep->stats.time_lists_read),
              Cell(mq->total_length_m / 1000.0, 1)});
    if (minutes >= 15 &&
        mq->stats.time_lists_read > rep->stats.time_lists_read) {
      mq_wins_duration = false;
    }
  }
  ShapeCheck("fig4.8a.mqmb_fewer_lists", mq_wins_duration,
             "MQMB reads fewer time lists than 3x SQMB for L >= 15");

  std::printf("\nFigure 4.8(b): m-query over #locations "
              "(T=10:00, L=20min, Prob=20%%)\n");
  PrintRow({"n", "mq_ms", "rep_ms", "mq_lists", "rep_lists"});
  double rep1 = 0, rep9 = 0, mq1 = 0, mq9 = 0;
  bool mq_wins_counts = true;
  for (int n = 1; n <= 9; n += 2) {
    MQuery q;
    q.locations = MakeLocations(stack, n);
    q.start_tod = HMS(10);
    q.duration = 1200;
    q.prob = 0.2;
    engine.ResetIoStats(true);
    auto warm_m = engine.MQueryIndexed(q);
    engine.ResetIoStats(true);
    auto mq = engine.MQueryIndexed(q);
    engine.ResetIoStats(true);
    auto warm_r = engine.MQueryRepeatedSQuery(q);
    engine.ResetIoStats(true);
    auto rep = engine.MQueryRepeatedSQuery(q);
    if (!mq.ok() || !rep.ok() || !warm_m.ok() || !warm_r.ok()) {
      std::fprintf(stderr, "FATAL at n=%d\n", n);
      return 1;
    }
    PrintRow({std::to_string(n), Cell(mq->stats.wall_ms, 2),
              Cell(rep->stats.wall_ms, 2),
              std::to_string(mq->stats.time_lists_read),
              std::to_string(rep->stats.time_lists_read)});
    if (n == 1) {
      rep1 = rep->stats.wall_ms;
      mq1 = mq->stats.wall_ms;
    }
    if (n == 9) {
      rep9 = rep->stats.wall_ms;
      mq9 = mq->stats.wall_ms;
    }
    if (n >= 3 && mq->stats.time_lists_read > rep->stats.time_lists_read) {
      mq_wins_counts = false;
    }
  }

  ShapeCheck("fig4.8b.mqmb_fewer_lists", mq_wins_counts,
             "MQMB reads fewer time lists than n x SQMB for n >= 3");
  ShapeCheck("fig4.8b.repeated_grows_faster",
             (rep9 - rep1) > (mq9 - mq1),
             "repeated s-query grows " + Cell(rep9 - rep1, 1) +
                 " ms (1->9 locs) vs MQMB " + Cell(mq9 - mq1, 1) + " ms");
  return 0;
}
