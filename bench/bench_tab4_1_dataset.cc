// Table 4.1 — Dataset Description.
//
// Prints the synthetic stand-in dataset's statistics next to the paper's
// Shenzhen values. Absolute scale is deliberately smaller (single-machine
// reproduction; see DESIGN.md §2); the table records both so the scale
// factor is explicit.
#include <cinttypes>
#include <cstdio>

#include "bench/bench_common.h"

using namespace strr;        // NOLINT
using namespace strr::bench;  // NOLINT

int main() {
  auto dataset = LoadOrBuildBenchDataset();
  if (!dataset.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  DatasetStats stats = dataset->store->ComputeStats();
  Mbr box = dataset->network.BoundingBox();
  double area_sq_miles = box.Width() * box.Height() / 2.59e6;

  std::printf("Table 4.1: Dataset Description (paper vs this reproduction)\n");
  PrintRow({"Statistic", "Paper", "Here"});
  PrintRow({"--------------", "----------", "----------"});
  PrintRow({"City size", "400 mi^2",
            Cell(area_sq_miles, 0) + " mi^2"});
  PrintRow({"Duration", "30 days", std::to_string(stats.num_days) + " days"});
  PrintRow({"Taxis", "21385", std::to_string(stats.num_taxis)});
  PrintRow({"Trajectories", "641550", std::to_string(stats.num_trajectories)});
  PrintRow({"GPS records", "407040083",
            std::to_string(dataset->approx_gps_points)});
  PrintRow({"Matched samples", "n/a", std::to_string(stats.num_samples)});
  PrintRow({"Road segments", "n/a",
            std::to_string(dataset->network.NumSegments())});
  PrintRow({"Road length", "n/a",
            Cell(dataset->network.TotalLengthMeters() / 1000.0, 0) + " km"});
  PrintRow({"Trips", "n/a", std::to_string(dataset->num_trips)});
  PrintRow({"Mean speed", "n/a", Cell(stats.mean_speed_mps, 1) + " m/s"});

  auto by_level = dataset->network.CountByLevel();
  std::printf("\nRoad class mix: highway=%zu arterial=%zu local=%zu\n",
              by_level[0], by_level[1], by_level[2]);

  ShapeCheck("tab4.1.thirty_days", stats.num_days == 30,
             std::to_string(stats.num_days) + " days");
  ShapeCheck("tab4.1.nonempty_fleet",
             stats.num_taxis > 0 && stats.num_trajectories > 0,
             std::to_string(stats.num_trajectories) + " trajectories");
  ShapeCheck("tab4.1.all_road_classes",
             by_level[0] > 0 && by_level[1] > 0 && by_level[2] > 0,
             "three classes present");
  return 0;
}
