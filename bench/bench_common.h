// Shared fixture for the paper-reproduction benches.
//
// Builds (once, cached on disk under STRR_BENCH_CACHE or
// /tmp/strr_bench_cache) the benchmark-scale synthetic dataset — the
// stand-in for the paper's Shenzhen taxi month — and provides engine
// construction plus small table-printing helpers so every bench binary
// prints rows the same way.
#ifndef STRR_BENCH_BENCH_COMMON_H_
#define STRR_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/persist.h"
#include "core/reachability_engine.h"
#include "query/query.h"

namespace strr {
namespace bench {

/// The dataset + a canonical busy query location (the paper queries a
/// fixed downtown location, s = (22.5311, 114.0550)).
///
/// Heap-allocated by LoadBenchStack: the engine holds pointers into
/// `dataset`, so the stack must never be moved after construction.
struct BenchStack {
  Dataset dataset;
  std::unique_ptr<ReachabilityEngine> engine;
  XyPoint query_location;
};

/// Scale knobs, overridable via STRR_BENCH_SCALE=small for smoke runs.
DatasetOptions BenchScaleOptions();

/// Loads the cached bench dataset or builds + caches it. Prints progress
/// to stderr (dataset generation takes tens of seconds on a cold cache).
StatusOr<Dataset> LoadOrBuildBenchDataset();

/// Builds an engine over `dataset` with the given Δt (seconds).
StatusOr<std::unique_ptr<ReachabilityEngine>> BuildBenchEngine(
    const Dataset& dataset, int64_t delta_t_seconds,
    size_t cache_pages = 8192);

/// Full stack with the default Δt = 5 min.
StatusOr<std::unique_ptr<BenchStack>> LoadBenchStack();

/// Picks the midpoint of the busiest segment (most 11:00 trajectories)
/// within `radius_m` of the city centre — a query location guaranteed to
/// have traffic, like the paper's downtown pick.
XyPoint PickBusyLocation(const ReachabilityEngine& engine,
                         const Dataset& dataset, int64_t tod,
                         double radius_m = 2500.0);

/// Prints an aligned table row of strings.
void PrintRow(const std::vector<std::string>& cells);

/// printf-style float cell.
std::string Cell(double value, int decimals = 1);

/// Emits a '# shape-check' verdict line (grep-able by EXPERIMENTS.md).
void ShapeCheck(const std::string& name, bool pass,
                const std::string& detail);

/// Runs one indexed s-query with a cold page cache and returns the result.
StatusOr<RegionResult> ColdSQueryIndexed(ReachabilityEngine& engine,
                                         const SQuery& query);

/// Runs the ES baseline with a cold page cache.
StatusOr<RegionResult> ColdSQueryExhaustive(ReachabilityEngine& engine,
                                            const SQuery& query);

}  // namespace bench
}  // namespace strr

#endif  // STRR_BENCH_BENCH_COMMON_H_
