// Figure 4.6 — Region maps at different start times (01:00, 06:00, 12:00,
// 18:00), Prob = 80%, L = 5 min.
//
// Writes GeoJSON per panel. Shape check: the 18:00 (evening rush) region
// is the smallest of the daytime panels, as in the paper.
#include <cstdio>
#include <filesystem>

#include "bench/bench_common.h"
#include "geo/geojson.h"

using namespace strr;        // NOLINT
using namespace strr::bench;  // NOLINT

int main() {
  auto maybe_stack = LoadBenchStack();
  if (!maybe_stack.ok()) {
    std::fprintf(stderr, "FATAL: %s\n",
                 maybe_stack.status().ToString().c_str());
    return 1;
  }
  BenchStack& stack = **maybe_stack;
  ReachabilityEngine& engine = *stack.engine;
  XyPoint loc = stack.query_location;
  std::string out_dir = "bench_maps";
  std::filesystem::create_directories(out_dir);

  std::printf("Figure 4.6: region maps by start time "
              "(Prob=80%%, L=5min; GeoJSON under %s/)\n", out_dir.c_str());
  PrintRow({"T", "segments", "len_km", "file"});

  double len_noon = 0, len_evening_rush = 0;
  // The paper shows 01:00/06:00/12:00/18:00; our synthetic fleet parks
  // overnight, so 01:00 and 06:00 mainly demonstrate the (near-)empty
  // night regions — which is itself the paper's point: the answer depends
  // on the querying time.
  for (int hour : {1, 6, 12, 18}) {
    SQuery q{loc, HMS(hour), 300, 0.8};
    auto r = engine.SQueryIndexed(q);
    if (!r.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", r.status().ToString().c_str());
      return 1;
    }
    GeoJsonWriter geo;
    for (SegmentId s : r->segments) {
      std::vector<GeoPoint> coords;
      for (const XyPoint& p :
           engine.network().segment(s).shape.points()) {
        coords.push_back(stack.dataset.projection.ToGeo(p));
      }
      geo.AddLineString(coords, {{"segment", std::to_string(s)}});
    }
    geo.AddPoint(stack.dataset.projection.ToGeo(loc),
                 {{"role", GeoJsonWriter::Quoted("query-location")}});
    std::string file = out_dir + "/fig4_6_T" + std::to_string(hour) +
                       "h.geojson";
    if (!geo.WriteFile(file).ok()) return 1;
    PrintRow({FormatTimeOfDay(HMS(hour)), std::to_string(r->segments.size()),
              Cell(r->total_length_m / 1000.0, 1), file});
    if (hour == 12) len_noon = r->total_length_m;
    if (hour == 18) len_evening_rush = r->total_length_m;
  }

  ShapeCheck("fig4.6.evening_rush_smallest", len_evening_rush < len_noon,
             "18:00 region " + Cell(len_evening_rush / 1000, 1) +
                 " km < 12:00 region " + Cell(len_noon / 1000, 1) + " km");
  return 0;
}
