// Tests for the query front door's admission control: deterministic
// ticket/queue accounting on AdmissionController itself, typed
// ResourceExhausted shedding, completion of already-admitted work, and
// executor-level behaviour — an over-capacity ExecuteBatch sheds instead
// of queueing unboundedly, and a saturating batch cannot starve
// concurrent single queries.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/admission_controller.h"
#include "core/query_executor.h"
#include "core/reachability_engine.h"
#include "query/query_plan.h"
#include "tests/test_util.h"

namespace strr {
namespace {

using testing_util::GetSharedStack;

// --- AdmissionController unit behaviour -------------------------------------

TEST(AdmissionControllerTest, DisabledControllerAdmitsEverything) {
  AdmissionController controller({.max_inflight = 0});
  EXPECT_FALSE(controller.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(controller.Admit().ok());
    EXPECT_TRUE(controller.TryAdmitBatch().ok());
  }
  EXPECT_EQ(controller.stats().shed, 0u);
}

TEST(AdmissionControllerTest, TicketAndBatchShareAccounting) {
  // 4 tickets, batches capped at half of them.
  AdmissionController controller(
      {.max_inflight = 4, .max_queued = 0, .batch_share = 0.5});
  EXPECT_EQ(controller.batch_cap(), 2u);

  EXPECT_TRUE(controller.TryAdmitBatch().ok());
  EXPECT_TRUE(controller.TryAdmitBatch().ok());
  Status third = controller.TryAdmitBatch();
  EXPECT_TRUE(third.IsResourceExhausted()) << third.ToString();

  // The two tickets batches may not touch still admit singles.
  EXPECT_TRUE(controller.Admit().ok());
  EXPECT_TRUE(controller.Admit().ok());
  EXPECT_EQ(controller.inflight(), 4u);

  // Full house, empty queue: the next single sheds typed.
  Status full = controller.Admit();
  EXPECT_TRUE(full.IsResourceExhausted()) << full.ToString();

  controller.ReleaseBatch();
  EXPECT_TRUE(controller.TryAdmitBatch().ok());  // batch slot freed
  controller.Release();
  controller.Release();
  controller.ReleaseBatch();
  controller.ReleaseBatch();
  EXPECT_EQ(controller.inflight(), 0u);

  AdmissionController::Stats stats = controller.stats();
  EXPECT_EQ(stats.admitted, 5u);
  EXPECT_EQ(stats.shed, 2u);
}

TEST(AdmissionControllerTest, BoundedQueueWaitsThenSheds) {
  AdmissionController controller({.max_inflight = 1, .max_queued = 1});
  ASSERT_TRUE(controller.Admit().ok());  // occupy the only ticket

  std::atomic<bool> waiter_admitted{false};
  std::thread waiter([&] {
    Status s = controller.Admit();  // queues (1 of 1), then blocks
    EXPECT_TRUE(s.ok()) << s.ToString();
    waiter_admitted.store(true);
    controller.Release();
  });
  while (controller.queued() == 0) std::this_thread::yield();
  EXPECT_FALSE(waiter_admitted.load());

  // Queue is now full: a third caller is shed immediately, typed.
  Status shed = controller.Admit();
  EXPECT_TRUE(shed.IsResourceExhausted()) << shed.ToString();

  // Releasing the ticket hands it to the queued waiter, which completes:
  // admitted work is never shed after the fact.
  controller.Release();
  waiter.join();
  EXPECT_TRUE(waiter_admitted.load());
  EXPECT_EQ(controller.inflight(), 0u);
  EXPECT_EQ(controller.stats().shed, 1u);
  EXPECT_EQ(controller.stats().admitted, 2u);
}

// --- Executor-level shedding ------------------------------------------------

TEST(QueryExecutorAdmissionTest, OverCapacityBatchShedsTyped) {
  auto& stack = GetSharedStack();
  auto plan = stack.engine->planner().PlanSQuery(
      {stack.dataset.center, HMS(11), 600, 0.2});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto reference = stack.engine->executor().Execute(*plan);
  ASSERT_TRUE(reference.ok());

  QueryExecutorOptions opt;
  opt.num_threads = 4;
  opt.max_inflight = 2;
  opt.max_queued = 2;
  opt.batch_share = 1.0;
  auto executor = stack.engine->MakeExecutor(opt);

  constexpr size_t kBatch = 40;
  std::vector<QueryPlan> plans(kBatch, *plan);
  auto results = executor->ExecuteBatch(plans);
  ASSERT_EQ(results.size(), kBatch);

  size_t ok = 0, shed = 0;
  for (const auto& r : results) {
    if (r.ok()) {
      ++ok;
      // Admitted plans complete correctly; shedding never corrupts them.
      EXPECT_EQ(r->segments, reference->segments);
    } else {
      ++shed;
      EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
    }
  }
  EXPECT_EQ(ok + shed, kBatch);
  EXPECT_GE(ok, 2u);  // capacity's worth of work was admitted and finished
  // Submission takes microseconds against millisecond queries: nearly the
  // whole overhang sheds. Generous slack for completions mid-submission.
  EXPECT_GE(shed, kBatch - 12);
  EXPECT_EQ(executor->front_door_stats().shed, shed);
  EXPECT_EQ(executor->admission_controller()->inflight(), 0u);
}

TEST(QueryExecutorAdmissionTest, SaturatingBatchCannotStarveSingles) {
  auto& stack = GetSharedStack();
  const QueryPlanner& planner = stack.engine->planner();
  auto batch_plan = planner.PlanSQuery(
      {stack.dataset.center, HMS(10), 600, 0.1});
  Mbr box = stack.engine->network().BoundingBox();
  auto single_plan = planner.PlanSQuery(
      {{box.min_x() + box.Width() * 0.4, box.min_y() + box.Height() * 0.45},
       HMS(11),
       600,
       0.2});
  ASSERT_TRUE(batch_plan.ok());
  ASSERT_TRUE(single_plan.ok());

  QueryExecutorOptions opt;
  opt.num_threads = 4;
  opt.max_inflight = 4;
  opt.max_queued = 4;
  opt.batch_share = 0.5;  // batches hold at most 2 of the 4 tickets
  auto executor = stack.engine->MakeExecutor(opt);

  // A client that saturates the executor with back-to-back big batches.
  std::atomic<bool> stop{false};
  std::thread batcher([&] {
    std::vector<QueryPlan> plans(16, *batch_plan);
    while (!stop.load()) {
      auto results = executor->ExecuteBatch(plans);
      (void)results;  // sheds are expected and fine here
    }
  });

  // Meanwhile two single-query clients must keep getting served: the
  // batch share leaves them dedicated tickets, so none is ever shed.
  std::atomic<int> single_failures{0};
  std::vector<std::thread> singles;
  for (int t = 0; t < 2; ++t) {
    singles.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        auto r = executor->Execute(*single_plan);
        if (!r.ok()) single_failures.fetch_add(1);
      }
    });
  }
  for (auto& s : singles) s.join();
  stop.store(true);
  batcher.join();

  EXPECT_EQ(single_failures.load(), 0)
      << "single queries were shed or failed while a batch saturated the "
         "executor";
  EXPECT_GT(executor->front_door_stats().shed, 0u)
      << "the batch never actually saturated capacity";
}

TEST(QueryExecutorAdmissionTest, MQueryLegsAreNotReadmitted) {
  // A parallel repeated-s m-query fans its legs onto the pool. With a
  // capacity of one, re-admitting legs would shed or deadlock mid-query;
  // the front door must treat the admitted m-query as one unit.
  auto& stack = GetSharedStack();
  Mbr box = stack.engine->network().BoundingBox();
  MQuery m;
  m.locations = {stack.dataset.center,
                 {box.min_x() + box.Width() * 0.35,
                  box.min_y() + box.Height() * 0.4},
                 {box.min_x() + box.Width() * 0.65,
                  box.min_y() + box.Height() * 0.6}};
  m.start_tod = HMS(10);
  m.duration = 600;
  m.prob = 0.1;
  auto plan = stack.engine->planner().PlanMQuery(m, QueryStrategy::kRepeatedS);
  ASSERT_TRUE(plan.ok());

  auto reference = stack.engine->executor().Execute(*plan);
  ASSERT_TRUE(reference.ok());

  QueryExecutorOptions opt;
  opt.num_threads = 4;
  opt.parallel_mquery_legs = true;
  opt.max_inflight = 1;  // tightest possible: the m-query takes the ticket
  opt.max_queued = 0;
  auto executor = stack.engine->MakeExecutor(opt);
  auto r = executor->Execute(*plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->segments, reference->segments);
  EXPECT_EQ(executor->front_door_stats().shed, 0u);
  EXPECT_EQ(executor->admission_controller()->inflight(), 0u);
}

}  // namespace
}  // namespace strr
