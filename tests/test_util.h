// Shared fixtures for the test suite: tiny hand-built networks, a seeded
// small dataset + engine built once per test binary, temp-dir helpers.
#ifndef STRR_TESTS_TEST_UTIL_H_
#define STRR_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "core/dataset.h"
#include "core/reachability_engine.h"
#include "roadnet/road_network.h"

namespace strr {
namespace testing_util {

/// ASSERT-friendly status check.
#define STRR_ASSERT_OK(expr)                                    \
  do {                                                          \
    auto _s = (expr);                                           \
    ASSERT_TRUE(_s.ok()) << "status: " << _s.ToString();        \
  } while (0)

#define STRR_EXPECT_OK(expr)                                    \
  do {                                                          \
    auto _s = (expr);                                           \
    EXPECT_TRUE(_s.ok()) << "status: " << _s.ToString();        \
  } while (0)

/// Builds a rows x cols grid of two-way local streets with `spacing` meter
/// blocks; node (r, c) has id r * cols + c. Finalized.
inline RoadNetwork MakeGridNetwork(int rows, int cols,
                                   double spacing = 400.0,
                                   RoadLevel level = RoadLevel::kLocal) {
  RoadNetwork net;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      net.AddNode({c * spacing, r * spacing});
    }
  }
  auto node = [&](int r, int c) { return static_cast<NodeId>(r * cols + c); };
  auto straight = [&](NodeId a, NodeId b) {
    return Polyline({net.node(a), net.node(b)});
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c + 1 < cols; ++c) {
      auto s = net.AddTwoWaySegment(node(r, c), node(r, c + 1), level,
                                    straight(node(r, c), node(r, c + 1)));
      EXPECT_TRUE(s.ok());
    }
  }
  for (int c = 0; c < cols; ++c) {
    for (int r = 0; r + 1 < rows; ++r) {
      auto s = net.AddTwoWaySegment(node(r, c), node(r + 1, c), level,
                                    straight(node(r, c), node(r + 1, c)));
      EXPECT_TRUE(s.ok());
    }
  }
  EXPECT_TRUE(net.Finalize().ok());
  return net;
}

/// A simple one-way chain a->b->c->... of `n` segments, `len` meters each.
inline RoadNetwork MakeChainNetwork(int n, double len = 300.0) {
  RoadNetwork net;
  for (int i = 0; i <= n; ++i) net.AddNode({i * len, 0.0});
  for (int i = 0; i < n; ++i) {
    auto s = net.AddSegment(
        static_cast<NodeId>(i), static_cast<NodeId>(i + 1), RoadLevel::kLocal,
        Polyline({net.node(i), net.node(i + 1)}));
    EXPECT_TRUE(s.ok());
  }
  EXPECT_TRUE(net.Finalize().ok());
  return net;
}

/// Fresh unique temp directory for a test. pid + counter, not rand():
/// unseeded rand() repeats across test binaries, and two binaries racing
/// into the same dir (GetSharedStack's work_dir) corrupt each other's
/// on-disk index under parallel ctest.
inline std::string MakeTempDir(const std::string& tag) {
  static std::atomic<uint64_t> next{0};
  std::string path = ::testing::TempDir() + "strr_" + tag + "_" +
                     std::to_string(static_cast<long>(::getpid())) + "_" +
                     std::to_string(next.fetch_add(1));
  std::filesystem::create_directories(path);
  return path;
}

/// Dataset + engine shared across tests in one binary (expensive to build).
struct SharedStack {
  Dataset dataset;
  std::unique_ptr<ReachabilityEngine> engine;
};

/// Builds (once) and returns the shared small dataset + engine.
inline SharedStack& GetSharedStack() {
  static SharedStack* stack = [] {
    auto* s = new SharedStack();
    auto dataset = BuildDataset(TestDatasetOptions());
    EXPECT_TRUE(dataset.ok()) << dataset.status().ToString();
    s->dataset = std::move(dataset).value();
    EngineOptions opt;
    opt.work_dir = MakeTempDir("shared_engine");
    opt.delta_t_seconds = 300;
    opt.cache_pages = 4096;
    auto engine =
        ReachabilityEngine::Build(s->dataset.network, *s->dataset.store, opt);
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    s->engine = std::move(engine).value();
    return s;
  }();
  return *stack;
}

}  // namespace testing_util
}  // namespace strr

#endif  // STRR_TESTS_TEST_UTIL_H_
