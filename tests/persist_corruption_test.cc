// Hostile-input and crash-safety tests for dataset persistence: the
// round-trip oracle, the injected-short-write regression (a failed save
// must leave the previous revision loadable), and systematic truncation /
// byte-flip sweeps over every committed file — each mutation must yield a
// typed Corruption/IoError, never a crash, hang, or huge allocation.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/persist.h"
#include "storage/fs_util.h"
#include "tests/test_util.h"
#include "util/serialize.h"

namespace strr {
namespace {

namespace fs = std::filesystem;
using testing_util::MakeGridNetwork;
using testing_util::MakeTempDir;

Dataset MakeTinyDataset(float speed_a = 8.0f, float speed_b = 12.0f) {
  Dataset dataset;
  dataset.network = MakeGridNetwork(3, 3, 300.0);
  dataset.store = std::make_unique<TrajectoryStore>(2);
  MatchedTrajectory traj;
  traj.id = 1;
  traj.taxi = 7;
  traj.day = 0;
  traj.samples = {{0, MakeTimestamp(0, 100), speed_a},
                  {1, MakeTimestamp(0, 130), speed_b}};
  EXPECT_TRUE(dataset.store->Add(std::move(traj)).ok());
  dataset.projection = Projection({39.9, 116.4});
  dataset.center = {450.0, 450.0};
  dataset.num_trips = 1;
  dataset.approx_gps_points = 2;
  return dataset;
}

std::vector<std::string> CommittedFiles(const std::string& dir) {
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".strr") {
      files.push_back(entry.path().string());
    }
  }
  return files;
}

void OverwriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(PersistCorruptionTest, RoundTripOracle) {
  Dataset dataset = MakeTinyDataset();
  std::string dir = MakeTempDir("pc_oracle");
  STRR_ASSERT_OK(SaveDataset(dataset, dir));
  ASSERT_TRUE(DatasetExists(dir));
  auto loaded = LoadDataset(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->network.NumSegments(), dataset.network.NumSegments());
  EXPECT_EQ(loaded->store->NumTrajectories(), 1u);
  const MatchedTrajectory& got = loaded->store->TrajectoriesOnDay(0)[0];
  EXPECT_NEAR(got.samples[0].speed_mps, 8.0f, 0.01);
  EXPECT_NEAR(got.samples[1].speed_mps, 12.0f, 0.01);
}

TEST(PersistCorruptionTest, FailedSaveLeavesPreviousRevisionLoadable) {
  // The satellite-1 regression: the old WriteFileBytes truncated the
  // destination in place, so a failed re-save destroyed the dataset. Now
  // every write lands in a temp file; an injected short write (full disk
  // / crash) at ANY byte budget must fail the save AND leave the first
  // revision bit-for-bit loadable.
  Dataset first = MakeTinyDataset(8.0f, 12.0f);
  Dataset second = MakeTinyDataset(3.0f, 4.0f);

  // Byte budgets sweep every crash window: inside each payload write,
  // inside the manifest commit, and past the end (save succeeds). The
  // invariant: the directory ALWAYS loads, to exactly the old dataset
  // when the save failed or exactly the new one when it succeeded.
  bool saw_failure = false, saw_success = false;
  for (int64_t budget : {0, 10, 80, 300, 700, 1100, 1350, 1450, 1550, 1700,
                         2500, 100000}) {
    std::string dir = MakeTempDir("pc_sw_" + std::to_string(budget));
    STRR_ASSERT_OK(SaveDataset(first, dir));
    TestInjectWriteFailureAfter(budget);
    Status s = SaveDataset(second, dir);
    TestInjectWriteFailureAfter(-1);

    auto loaded = LoadDataset(dir);
    ASSERT_TRUE(loaded.ok())
        << "budget=" << budget << " " << loaded.status().ToString();
    float got = loaded->store->TrajectoriesOnDay(0)[0].samples[0].speed_mps;
    if (s.ok()) {
      saw_success = true;
      EXPECT_NEAR(got, 3.0f, 0.01) << "budget=" << budget;
    } else {
      saw_failure = true;
      EXPECT_TRUE(s.IsIoError()) << "budget=" << budget << " " << s.ToString();
      EXPECT_NEAR(got, 8.0f, 0.01) << "budget=" << budget;
    }
  }
  // The sweep must actually exercise both outcomes.
  EXPECT_TRUE(saw_failure);
  EXPECT_TRUE(saw_success);
}

TEST(PersistCorruptionTest, TruncationSweepOverEveryCommittedFile) {
  Dataset dataset = MakeTinyDataset();
  std::string dir = MakeTempDir("pc_trunc");
  STRR_ASSERT_OK(SaveDataset(dataset, dir));
  std::vector<std::string> files = CommittedFiles(dir);
  ASSERT_EQ(files.size(), 4u);  // manifest + three payloads

  for (const std::string& path : files) {
    auto original = ReadFileToString(path);
    ASSERT_TRUE(original.ok());
    for (size_t cut : {size_t{0}, size_t{1}, original->size() / 4,
                       original->size() / 2, original->size() - 1}) {
      OverwriteFile(path, original->substr(0, cut));
      auto loaded = LoadDataset(dir);
      ASSERT_FALSE(loaded.ok()) << path << " cut=" << cut;
      ASSERT_TRUE(loaded.status().IsCorruption() ||
                  loaded.status().IsIoError())
          << path << " cut=" << cut << " " << loaded.status().ToString();
    }
    OverwriteFile(path, *original);
    ASSERT_TRUE(LoadDataset(dir).ok()) << "restore failed for " << path;
  }
}

TEST(PersistCorruptionTest, ByteFlipSweepOverEveryCommittedFile) {
  Dataset dataset = MakeTinyDataset();
  std::string dir = MakeTempDir("pc_flip");
  STRR_ASSERT_OK(SaveDataset(dataset, dir));

  for (const std::string& path : CommittedFiles(dir)) {
    auto original = ReadFileToString(path);
    ASSERT_TRUE(original.ok());
    size_t stride = std::max<size_t>(1, original->size() / 37);
    for (size_t pos = 0; pos < original->size(); pos += stride) {
      std::string mutated = *original;
      mutated[pos] ^= 0x20;
      OverwriteFile(path, mutated);
      auto loaded = LoadDataset(dir);
      // Every byte of every committed file is covered by a CRC in the
      // manifest (or the manifest's own trailing CRC), so any flip must
      // be caught as typed Corruption.
      ASSERT_FALSE(loaded.ok()) << path << " pos=" << pos;
      ASSERT_TRUE(loaded.status().IsCorruption())
          << path << " pos=" << pos << " " << loaded.status().ToString();
    }
    OverwriteFile(path, *original);
    ASSERT_TRUE(LoadDataset(dir).ok()) << "restore failed for " << path;
  }
}

TEST(PersistCorruptionTest, HostileCountsFailFastWithoutAllocating) {
  // A network header claiming 2^32 nodes in a 30-byte file must be
  // rejected by the remaining-bytes clamp, not attempted.
  BinaryWriter w;
  w.PutU64(0x5354525f4e455431ULL);  // network magic
  w.PutU32(1);                      // version
  w.PutU64(uint64_t{1} << 32);      // num_nodes
  auto network = DeserializeNetwork(w.data());
  ASSERT_FALSE(network.ok());
  EXPECT_TRUE(network.status().IsCorruption());

  // Same for a trajectory file with an absurd trajectory count, loaded
  // through the legacy (manifest-less) path.
  std::string dir = MakeTempDir("pc_hostile");
  Dataset dataset = MakeTinyDataset();
  OverwriteFile(dir + "/network.strr", SerializeNetwork(dataset.network));
  BinaryWriter t;
  t.PutU64(0x5354525f54524a31ULL);  // trajectory magic
  t.PutU32(1);                      // version
  t.PutU32(1);                      // num_days
  t.PutU64(uint64_t{1} << 60);      // num_trajs
  OverwriteFile(dir + "/trajectories.strr", t.data());
  auto loaded = LoadDataset(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status().ToString();
}

TEST(PersistCorruptionTest, SpeedClampOnSaveAndRejectOnLoad) {
  // Satellite 3: negative / NaN / absurd speeds used to wrap through the
  // unsigned cm/s varint. They must clamp into [0, 1000 m/s] on save...
  Dataset dataset = MakeTinyDataset();
  MatchedTrajectory traj;
  traj.id = 2;
  traj.taxi = 9;
  traj.day = 1;
  traj.samples = {{0, MakeTimestamp(1, 50), -5.0f},
                  {1, MakeTimestamp(1, 80), std::numeric_limits<float>::quiet_NaN()},
                  {2, MakeTimestamp(1, 110), 1.0e9f},
                  {3, MakeTimestamp(1, 140), 9.5f}};
  ASSERT_TRUE(dataset.store->Add(std::move(traj)).ok());
  std::string dir = MakeTempDir("pc_speed");
  STRR_ASSERT_OK(SaveDataset(dataset, dir));
  auto loaded = LoadDataset(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto& got = loaded->store->TrajectoriesOnDay(1)[0].samples;
  EXPECT_FLOAT_EQ(got[0].speed_mps, 0.0f);
  EXPECT_FLOAT_EQ(got[1].speed_mps, 0.0f);
  EXPECT_FLOAT_EQ(got[2].speed_mps, 1000.0f);
  EXPECT_NEAR(got[3].speed_mps, 9.5f, 0.01);

  // ...and a crafted file with an out-of-range stored speed must fail
  // with Corruption on load.
  std::string dir2 = MakeTempDir("pc_speed2");
  OverwriteFile(dir2 + "/network.strr", SerializeNetwork(dataset.network));
  BinaryWriter t;
  t.PutU64(0x5354525f54524a31ULL);
  t.PutU32(1);
  t.PutU32(1);   // num_days
  t.PutU64(1);   // one trajectory
  t.PutU32(1);   // id
  t.PutU32(1);   // taxi
  t.PutU32(0);   // day
  t.PutVarint32(1);         // one sample
  t.PutVarint32(0);         // segment
  t.PutVarint64(100);       // timestamp delta
  t.PutVarint32(200000);    // 2000 m/s: past the clamp ceiling
  OverwriteFile(dir2 + "/trajectories.strr", t.data());
  auto bad = LoadDataset(dir2);
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsCorruption()) << bad.status().ToString();
}

TEST(PersistCorruptionTest, LegacyLayoutStillLoads) {
  // Pre-manifest datasets (plain filenames, no checksums) keep loading.
  Dataset dataset = MakeTinyDataset();
  std::string dir = MakeTempDir("pc_legacy");
  std::string committed = MakeTempDir("pc_legacy_src");
  STRR_ASSERT_OK(SaveDataset(dataset, committed));
  auto reference = LoadDataset(committed);
  ASSERT_TRUE(reference.ok());

  OverwriteFile(dir + "/network.strr", SerializeNetwork(dataset.network));
  // Reuse the committed payload bytes under legacy names.
  for (const std::string& path : CommittedFiles(committed)) {
    std::string name = fs::path(path).filename().string();
    for (const char* base : {"trajectories", "meta"}) {
      if (name.rfind(base, 0) == 0) {
        auto bytes = ReadFileToString(path);
        ASSERT_TRUE(bytes.ok());
        OverwriteFile(dir + "/" + std::string(base) + ".strr", *bytes);
      }
    }
  }
  ASSERT_TRUE(DatasetExists(dir));
  auto loaded = LoadDataset(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->store->NumTrajectories(),
            reference->store->NumTrajectories());
}

TEST(PersistCorruptionTest, SaveBumpsRevisionAndCollectsStaleFiles) {
  Dataset dataset = MakeTinyDataset();
  std::string dir = MakeTempDir("pc_rev");
  STRR_ASSERT_OK(SaveDataset(dataset, dir));
  STRR_ASSERT_OK(SaveDataset(dataset, dir));
  STRR_ASSERT_OK(SaveDataset(dataset, dir));
  // Only the manifest and the three current-revision payloads remain.
  EXPECT_EQ(CommittedFiles(dir).size(), 4u);
  ASSERT_TRUE(LoadDataset(dir).ok());
}

}  // namespace
}  // namespace strr
