// Tests for network expansion (INE), the A* router and the segment grid.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "roadnet/expansion.h"
#include "roadnet/router.h"
#include "roadnet/segment_grid.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace strr {
namespace {

using testing_util::MakeChainNetwork;
using testing_util::MakeGridNetwork;

SpeedFn ConstantSpeed(double mps) {
  return [mps](SegmentId) { return mps; };
}

// --- ExpandFrom --------------------------------------------------------------

TEST(ExpansionTest, ChainArrivalTimesAreCumulative) {
  // 4 segments of 100m at 10 m/s: completion times 10, 20, 30, 40.
  RoadNetwork net = MakeChainNetwork(4, 100.0);
  auto hits = ExpandFrom(net, 0, 100.0, ConstantSpeed(10.0));
  ASSERT_EQ(hits.size(), 4u);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].segment, i);
    EXPECT_DOUBLE_EQ(hits[i].arrival_seconds, 10.0 * (i + 1));
  }
}

TEST(ExpansionTest, BudgetCutsOffExactly) {
  RoadNetwork net = MakeChainNetwork(4, 100.0);
  auto hits = ExpandFrom(net, 0, 25.0, ConstantSpeed(10.0));
  ASSERT_EQ(hits.size(), 2u);  // 10s and 20s fit; 30s does not
  auto exact = ExpandFrom(net, 0, 30.0, ConstantSpeed(10.0));
  EXPECT_EQ(exact.size(), 3u);  // inclusive boundary
}

TEST(ExpansionTest, ZeroBudgetYieldsNothing) {
  RoadNetwork net = MakeChainNetwork(3, 100.0);
  EXPECT_TRUE(ExpandFrom(net, 0, 0.0, ConstantSpeed(10.0)).empty());
}

TEST(ExpansionTest, SourceIncludedWhenTraversable) {
  RoadNetwork net = MakeChainNetwork(3, 100.0);
  auto hits = ExpandFrom(net, 1, 10.0, ConstantSpeed(10.0));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].segment, 1u);
}

TEST(ExpansionTest, NonTraversableSpeedBlocks) {
  RoadNetwork net = MakeChainNetwork(3, 100.0);
  SpeedFn speed = [](SegmentId id) { return id == 1 ? 0.0 : 10.0; };
  auto hits = ExpandFrom(net, 0, 1000.0, speed);
  // Segment 1 blocks the chain: only segment 0 reachable.
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].segment, 0u);
}

TEST(ExpansionTest, MonotoneInBudget) {
  RoadNetwork net = MakeGridNetwork(5, 5, 200.0);
  auto small = ExpandFrom(net, 0, 60.0, ConstantSpeed(8.0));
  auto large = ExpandFrom(net, 0, 120.0, ConstantSpeed(8.0));
  EXPECT_GE(large.size(), small.size());
  std::set<SegmentId> large_set;
  for (const auto& h : large) large_set.insert(h.segment);
  for (const auto& h : small) {
    EXPECT_TRUE(large_set.count(h.segment)) << "budget not monotone";
  }
}

TEST(ExpansionTest, FasterSpeedReachesMore) {
  RoadNetwork net = MakeGridNetwork(6, 6, 200.0);
  auto slow = ExpandFrom(net, 0, 100.0, ConstantSpeed(5.0));
  auto fast = ExpandFrom(net, 0, 100.0, ConstantSpeed(15.0));
  EXPECT_GT(fast.size(), slow.size());
}

TEST(ExpansionTest, ResultsSortedByArrival) {
  RoadNetwork net = MakeGridNetwork(5, 5, 150.0);
  auto hits = ExpandFrom(net, 3, 200.0, ConstantSpeed(10.0));
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i - 1].arrival_seconds, hits[i].arrival_seconds);
  }
}

TEST(ExpansionTest, GridDistancesMatchManhattanStructure) {
  // On a uniform grid at constant speed, completion time of any segment
  // equals (number of segments on the best path) * per-segment time.
  RoadNetwork net = MakeGridNetwork(4, 4, 100.0);
  auto hits = ExpandFrom(net, 0, 1000.0, ConstantSpeed(10.0));
  for (const auto& h : hits) {
    double steps = h.arrival_seconds / 10.0;
    EXPECT_NEAR(steps, std::round(steps), 1e-9) << "non-integral path length";
  }
}

// --- ExpandFromMany / origins ------------------------------------------------

TEST(ExpansionTest, MultiSourceOriginAssignsNearest) {
  RoadNetwork net = MakeChainNetwork(10, 100.0);
  std::vector<SegmentId> origin;
  auto hits = ExpandFromMany(net, {0, 9}, 1e9, ConstantSpeed(10.0), &origin);
  EXPECT_EQ(hits.size(), 10u);
  // Chain is one-way, so everything downstream of 0 is owned by 0 except
  // segment 9 itself (unreachable from 0 at lower cost than its own start).
  EXPECT_EQ(origin[0], 0u);
  EXPECT_EQ(origin[9], 9u);
  EXPECT_EQ(origin[5], 0u);
}

TEST(ExpansionTest, MultiSourceOriginOnGrid) {
  RoadNetwork net = MakeGridNetwork(3, 7, 100.0);
  // Two sources at opposite corners; origins must partition the grid and
  // each segment's owner must be the closer source.
  SegmentId s0 = 0;
  SegmentId s1 = static_cast<SegmentId>(net.NumSegments() - 1);
  std::vector<SegmentId> origin;
  ExpandFromMany(net, {s0, s1}, 1e9, ConstantSpeed(10.0), &origin);
  auto from0 = ShortestTravelTimes(net, s0, ConstantSpeed(10.0));
  auto from1 = ShortestTravelTimes(net, s1, ConstantSpeed(10.0));
  for (SegmentId id = 0; id < net.NumSegments(); ++id) {
    ASSERT_NE(origin[id], kInvalidSegment);
    if (from0[id] < from1[id]) {
      EXPECT_EQ(origin[id], s0) << "segment " << id;
    } else if (from1[id] < from0[id]) {
      EXPECT_EQ(origin[id], s1) << "segment " << id;
    }
  }
}

// --- ShortestTravelTimes / ShortestPath --------------------------------------

TEST(ShortestPathTest, PathEndpointsAndContinuity) {
  RoadNetwork net = MakeGridNetwork(5, 5, 100.0);
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    SegmentId a = static_cast<SegmentId>(
        rng.UniformInt(0, net.NumSegments() - 1));
    SegmentId b = static_cast<SegmentId>(
        rng.UniformInt(0, net.NumSegments() - 1));
    auto path = ShortestPath(net, a, b, ConstantSpeed(10.0));
    if (path.empty()) continue;
    EXPECT_EQ(path.front(), a);
    EXPECT_EQ(path.back(), b);
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      const auto& out = net.OutgoingOf(path[i]);
      EXPECT_NE(std::find(out.begin(), out.end(), path[i + 1]), out.end())
          << "discontinuous path";
    }
  }
}

TEST(ShortestPathTest, CostMatchesLabel) {
  RoadNetwork net = MakeGridNetwork(4, 6, 120.0);
  auto labels = ShortestTravelTimes(net, 2, ConstantSpeed(10.0));
  auto path = ShortestPath(net, 2, 17, ConstantSpeed(10.0));
  ASSERT_FALSE(path.empty());
  double cost = 0;
  for (SegmentId s : path) cost += net.segment(s).length / 10.0;
  EXPECT_NEAR(cost, labels[17], 1e-9);
}

TEST(ShortestPathTest, UnreachableReturnsEmpty) {
  // One-way chain: cannot go backwards.
  RoadNetwork net = MakeChainNetwork(5, 100.0);
  EXPECT_TRUE(ShortestPath(net, 4, 0, ConstantSpeed(10.0)).empty());
  EXPECT_FALSE(ShortestPath(net, 0, 4, ConstantSpeed(10.0)).empty());
}

TEST(ShortestPathTest, SelfPathIsSingleton) {
  RoadNetwork net = MakeChainNetwork(3, 100.0);
  auto path = ShortestPath(net, 1, 1, ConstantSpeed(10.0));
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 1u);
}

// --- Router (A*) -------------------------------------------------------------

TEST(RouterTest, MatchesDijkstraOnRandomPairs) {
  RoadNetwork net = MakeGridNetwork(6, 6, 150.0);
  SpeedFn speeds = FreeFlowSpeeds(net);
  Router router(net, speeds, FreeFlowSpeed(RoadLevel::kHighway));
  Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    SegmentId a = static_cast<SegmentId>(
        rng.UniformInt(0, net.NumSegments() - 1));
    SegmentId b = static_cast<SegmentId>(
        rng.UniformInt(0, net.NumSegments() - 1));
    auto astar = router.Route(a, b);
    auto dijkstra = ShortestPath(net, a, b, speeds);
    ASSERT_EQ(astar.empty(), dijkstra.empty());
    if (astar.empty()) continue;
    auto cost = [&](const std::vector<SegmentId>& p) {
      double c = 0;
      for (SegmentId s : p) c += net.segment(s).length / speeds(s);
      return c;
    };
    EXPECT_NEAR(cost(astar), cost(dijkstra), 1e-6);
  }
}

TEST(RouterTest, CachedRouteHitsCache) {
  RoadNetwork net = MakeGridNetwork(4, 4, 100.0);
  Router router(net, ConstantSpeed(10.0), 10.0);
  const auto& p1 = router.RouteCached(0, 10);
  EXPECT_EQ(router.CacheMisses(), 1u);
  const auto& p2 = router.RouteCached(0, 10);
  EXPECT_EQ(router.CacheHits(), 1u);
  EXPECT_EQ(&p1, &p2);  // same stored vector
}

TEST(RouterTest, InvalidIdsReturnEmpty) {
  RoadNetwork net = MakeChainNetwork(2, 100.0);
  Router router(net, ConstantSpeed(10.0), 10.0);
  EXPECT_TRUE(router.Route(0, 999).empty());
  EXPECT_TRUE(router.Route(999, 0).empty());
}

// --- SegmentGrid -------------------------------------------------------------

TEST(SegmentGridTest, WithinRadiusMatchesBruteForce) {
  RoadNetwork net = MakeGridNetwork(5, 5, 130.0);
  SegmentGrid grid(net, 100.0);
  Rng rng(3);
  for (int trial = 0; trial < 25; ++trial) {
    XyPoint p{rng.Uniform(-100, 650), rng.Uniform(-100, 650)};
    double radius = rng.Uniform(20, 300);
    std::set<SegmentId> expected;
    for (const RoadSegment& seg : net.segments()) {
      if (seg.shape.Project(p).distance <= radius) expected.insert(seg.id);
    }
    auto got_vec = grid.WithinRadius(p, radius);
    std::set<SegmentId> got(got_vec.begin(), got_vec.end());
    EXPECT_EQ(got, expected) << "point (" << p.x << "," << p.y << ") r="
                             << radius;
  }
}

TEST(SegmentGridTest, WithinRadiusSortedByDistance) {
  RoadNetwork net = MakeGridNetwork(4, 4, 100.0);
  SegmentGrid grid(net, 80.0);
  auto hits = grid.WithinRadius({150.0, 150.0}, 250.0);
  double prev = -1.0;
  for (SegmentId id : hits) {
    double d = net.segment(id).shape.Project({150.0, 150.0}).distance;
    EXPECT_GE(d + 1e-9, prev);
    prev = d;
  }
}

TEST(SegmentGridTest, NearestAgreesWithBruteForce) {
  RoadNetwork net = MakeGridNetwork(4, 6, 140.0);
  SegmentGrid grid(net, 90.0);
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    XyPoint p{rng.Uniform(-200, 900), rng.Uniform(-200, 600)};
    SegmentId got = grid.Nearest(p);
    auto want = net.NearestSegmentBruteForce(p);
    ASSERT_TRUE(want.ok());
    double got_d = net.segment(got).shape.Project(p).distance;
    double want_d = net.segment(*want).shape.Project(p).distance;
    EXPECT_NEAR(got_d, want_d, 1e-9);  // may tie; distance must match
  }
}

TEST(SegmentGridTest, NearestOnEmptyNetwork) {
  RoadNetwork empty;
  ASSERT_TRUE(empty.Finalize().ok());
  SegmentGrid grid(empty, 100.0);
  EXPECT_EQ(grid.Nearest({0, 0}), kInvalidSegment);
}

TEST(SegmentGridTest, FarAwayPointStillFindsNearest) {
  RoadNetwork net = MakeChainNetwork(2, 100.0);
  SegmentGrid grid(net, 50.0);
  SegmentId got = grid.Nearest({100000.0, 100000.0});
  EXPECT_NE(got, kInvalidSegment);
}

}  // namespace
}  // namespace strr
