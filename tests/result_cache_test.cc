// Tests for the query front door's result cache: PlanKey canonicalization,
// hit/miss/eviction determinism, Δt-slot invalidation correctness
// (post-invalidation results bit-identical to an uncached recompute), and
// a multi-threaded hammer mixing hot repeated queries with cold ones while
// another thread invalidates — no torn RegionResult reads allowed.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/query_executor.h"
#include "core/reachability_engine.h"
#include "core/result_cache.h"
#include "query/query_plan.h"
#include "tests/test_util.h"

namespace strr {
namespace {

using testing_util::GetSharedStack;

QueryPlan HandPlan(int64_t start_tod, int64_t duration, double prob = 0.2) {
  QueryPlan plan;
  plan.strategy = QueryStrategy::kIndexed;
  plan.locations = {{100.0, 200.0}};
  plan.location_starts = {{7, 8}};
  plan.start_tod = start_tod;
  plan.duration = duration;
  plan.prob = prob;
  return plan;
}

RegionResult FakeResult(std::vector<SegmentId> segments) {
  RegionResult r;
  r.segments = std::move(segments);
  r.total_length_m = 42.0;
  return r;
}

// --- PlanKey ----------------------------------------------------------------

TEST(PlanKeyTest, IdenticalPlansShareOneKey) {
  QueryPlan a = HandPlan(HMS(11), 600);
  QueryPlan b = HandPlan(HMS(11), 600);
  PlanKey ka = MakePlanKey(a);
  PlanKey kb = MakePlanKey(b);
  EXPECT_EQ(ka.canonical, kb.canonical);
  EXPECT_EQ(ka.hash, kb.hash);
}

TEST(PlanKeyTest, EveryQueryFieldChangesTheKey) {
  const QueryPlan base = HandPlan(HMS(11), 600, 0.2);
  const std::string canonical = MakePlanKey(base).canonical;

  QueryPlan v = base;
  v.start_tod = HMS(11, 5);
  EXPECT_NE(MakePlanKey(v).canonical, canonical);

  v = base;
  v.duration = 900;
  EXPECT_NE(MakePlanKey(v).canonical, canonical);

  v = base;
  v.prob = 0.3;
  EXPECT_NE(MakePlanKey(v).canonical, canonical);

  v = base;
  v.strategy = QueryStrategy::kExhaustive;
  EXPECT_NE(MakePlanKey(v).canonical, canonical);

  v = base;
  v.location_starts = {{7}};
  EXPECT_NE(MakePlanKey(v).canonical, canonical);

  v = base;
  v.locations = {{100.0, 201.0}};
  EXPECT_NE(MakePlanKey(v).canonical, canonical);

  v = base;
  v.locations.push_back({300.0, 400.0});
  v.location_starts.push_back({9});
  EXPECT_NE(MakePlanKey(v).canonical, canonical);
}

// --- ResultCache unit behaviour ---------------------------------------------

TEST(ResultCacheTest, HitMissAndLruEvictionAreDeterministic) {
  ResultCache cache(300, {.capacity = 2, .shards = 1});
  PlanKey a = MakePlanKey(HandPlan(HMS(9), 600));
  PlanKey b = MakePlanKey(HandPlan(HMS(10), 600));
  PlanKey c = MakePlanKey(HandPlan(HMS(11), 600));

  EXPECT_FALSE(cache.Lookup(a).has_value());
  cache.Insert(a, FakeResult({1, 2}));
  cache.Insert(b, FakeResult({3}));
  EXPECT_EQ(cache.size(), 2u);

  auto hit = cache.Lookup(a);  // refreshes a to MRU
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->stats.cache_hit);
  EXPECT_EQ(hit->segments, (std::vector<SegmentId>{1, 2}));
  EXPECT_DOUBLE_EQ(hit->total_length_m, 42.0);

  cache.Insert(c, FakeResult({4}));  // over capacity: evicts LRU tail = b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Lookup(b).has_value());
  EXPECT_TRUE(cache.Lookup(a).has_value());
  EXPECT_TRUE(cache.Lookup(c).has_value());

  ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 3u);  // lookup(a) + post-eviction a and c
  EXPECT_EQ(stats.misses, 2u);  // the cold lookup(a) + evicted b
}

TEST(ResultCacheTest, SlotInvalidationEvictsOnlyOverlappingWindows) {
  ResultCache cache(300, {.capacity = 16, .shards = 2});
  // 11:00 + 600s covers Δt slots 132..133; 9:00 + 600s covers 108..109.
  PlanKey rush = MakePlanKey(HandPlan(HMS(11), 600));
  PlanKey morning = MakePlanKey(HandPlan(HMS(9), 600));
  cache.Insert(rush, FakeResult({1}));
  cache.Insert(morning, FakeResult({2}));

  // An update covering 11:00-12:00 must evict only the rush-hour entry.
  cache.InvalidateTimeRange(HMS(11), HMS(12));
  EXPECT_FALSE(cache.Lookup(rush).has_value());
  EXPECT_TRUE(cache.Lookup(morning).has_value());
  EXPECT_EQ(cache.stats().invalidated, 1u);

  // Slot-range form: 108 overlaps the morning entry's [108, 109].
  cache.InvalidateSlotRange(108, 108);
  EXPECT_FALSE(cache.Lookup(morning).has_value());
  EXPECT_EQ(cache.stats().invalidated, 2u);

  // Ranges touching nothing evict nothing.
  cache.Insert(rush, FakeResult({1}));
  cache.InvalidateSlotRange(0, 131);
  cache.InvalidateSlotRange(134, 287);
  EXPECT_TRUE(cache.Lookup(rush).has_value());

  cache.InvalidateAll();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCacheTest, MidnightWrappingWindowsAreEvictedConservatively) {
  // Execution normalizes time-of-day modulo the day, so a 23:55 + 10min
  // query really reads slot-0 data too; its entry must not survive an
  // early-morning refresh.
  ResultCache cache(300, {.capacity = 16, .shards = 1});
  PlanKey wrap = MakePlanKey(HandPlan(HMS(23, 55), 600));
  cache.Insert(wrap, FakeResult({1}));
  cache.InvalidateTimeRange(HMS(0), HMS(1));  // midnight..00:01
  EXPECT_FALSE(cache.Lookup(wrap).has_value());
}

// --- Doorkeeper (TinyLFU frequency admission) -------------------------------

TEST(FrequencySketchTest, CountsSaturateAndAge) {
  FrequencySketch sketch(1024);
  PlanKey a = MakePlanKey(HandPlan(HMS(9), 600));
  PlanKey b = MakePlanKey(HandPlan(HMS(10), 600));
  for (int i = 0; i < 10; ++i) sketch.Increment(a.hash);
  EXPECT_EQ(sketch.Estimate(a.hash), 10u);  // no other keys: exact
  EXPECT_EQ(sketch.Estimate(b.hash), 0u);

  for (int i = 0; i < 100; ++i) sketch.Increment(b.hash);
  EXPECT_EQ(sketch.Estimate(b.hash), 15u);  // 4-bit saturation

  sketch.Age();
  EXPECT_EQ(sketch.Estimate(a.hash), 5u);
  EXPECT_EQ(sketch.Estimate(b.hash), 7u);
}

TEST(ResultCacheDoorkeeperTest, OneShotScanCannotEvictHotEntries) {
  ResultCache cache(300,
                    {.capacity = 4, .shards = 1, .doorkeeper_counters = 1024});
  std::vector<PlanKey> hot;
  for (int i = 0; i < 4; ++i) {
    hot.push_back(MakePlanKey(HandPlan(HMS(8 + i), 600)));
    cache.Insert(hot.back(), FakeResult({SegmentId(i)}));
  }
  // Hot keys accrue frequency through (hit) lookups.
  for (int round = 0; round < 3; ++round) {
    for (const PlanKey& k : hot) EXPECT_TRUE(cache.Lookup(k).has_value());
  }
  // A one-shot cold scan: every key seen exactly once (miss, then insert).
  for (int i = 0; i < 50; ++i) {
    PlanKey cold = MakePlanKey(HandPlan(HMS(12), 600 + 60 * i));
    EXPECT_FALSE(cache.Lookup(cold).has_value());
    cache.Insert(cold, FakeResult({999}));
  }
  ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.doorkeeper_rejected, 50u);
  EXPECT_EQ(stats.evictions, 0u);
  for (size_t i = 0; i < hot.size(); ++i) {
    auto kept = cache.Lookup(hot[i]);
    ASSERT_TRUE(kept.has_value()) << "hot entry " << i << " was churned out";
    EXPECT_EQ(kept->segments, std::vector<SegmentId>{SegmentId(i)});
  }
}

TEST(ResultCacheDoorkeeperTest, RepeatedKeyOutfreqsColdVictimAndEnters) {
  ResultCache cache(300,
                    {.capacity = 2, .shards = 1, .doorkeeper_counters = 256});
  PlanKey v1 = MakePlanKey(HandPlan(HMS(8), 600));
  PlanKey v2 = MakePlanKey(HandPlan(HMS(9), 600));
  cache.Insert(v1, FakeResult({1}));  // under capacity: always admitted
  cache.Insert(v2, FakeResult({2}));  // never looked up -> frequency 0

  PlanKey riser = MakePlanKey(HandPlan(HMS(10), 600));
  EXPECT_FALSE(cache.Lookup(riser).has_value());  // freq 1
  cache.Insert(riser, FakeResult({3}));           // 1 > 0: admitted, evicts
  ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.doorkeeper_rejected, 0u);
  EXPECT_TRUE(cache.Lookup(riser).has_value());
}

TEST(ResultCacheDoorkeeperTest, OffByDefaultKeepsPlainLruChurn) {
  ResultCache cache(300, {.capacity = 2, .shards = 1});
  PlanKey a = MakePlanKey(HandPlan(HMS(8), 600));
  cache.Insert(a, FakeResult({1}));
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(cache.Lookup(a).has_value());
  }
  for (int i = 0; i < 4; ++i) {
    cache.Insert(MakePlanKey(HandPlan(HMS(12), 600 + 60 * i)),
                 FakeResult({9}));
  }
  ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.doorkeeper_rejected, 0u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_FALSE(cache.Lookup(a).has_value()) << "without the doorkeeper the "
                                               "scan churns the hot entry";
}

// --- Segmented LRU (full TinyLFU) -------------------------------------------

TEST(ResultCacheSegmentedTest, ScanCannotChurnTwiceAccessedEntries) {
  // Probation/protected split: entries with a second access live in the
  // protected segment, so a scan far larger than capacity churns only
  // probation. (Contrast OffByDefaultKeepsPlainLruChurn, where one-shot
  // inserts evict the hot entry.)
  ResultCache cache(300,
                    {.capacity = 8, .shards = 1, .protected_share = 0.5});
  std::vector<PlanKey> hot;
  for (int i = 0; i < 4; ++i) {
    hot.push_back(MakePlanKey(HandPlan(HMS(8), 300 + 60 * i)));
    cache.Insert(hot.back(), FakeResult({SegmentId(i)}));
  }
  // Second access promotes each hot entry out of probation.
  for (const PlanKey& k : hot) EXPECT_TRUE(cache.Lookup(k).has_value());

  for (int i = 0; i < 100; ++i) {
    cache.Insert(MakePlanKey(HandPlan(HMS(13), 300 + 60 * i)),
                 FakeResult({999}));
  }
  for (size_t i = 0; i < hot.size(); ++i) {
    EXPECT_TRUE(cache.Lookup(hot[i]).has_value())
        << "scan evicted protected entry " << i;
  }
  ResultCache::Stats stats = cache.stats();
  EXPECT_GE(stats.promotions, 4u);
  EXPECT_GT(stats.evictions, 0u);
}

TEST(ResultCacheSegmentedTest, ProtectedOverflowDemotesBackToProbation) {
  // Protected capacity 2 of 4: promoting a third hot entry demotes the
  // protected tail, which becomes evictable again.
  ResultCache cache(300,
                    {.capacity = 4, .shards = 1, .protected_share = 0.5});
  std::vector<PlanKey> keys;
  for (int i = 0; i < 3; ++i) {
    keys.push_back(MakePlanKey(HandPlan(HMS(8), 300 + 60 * i)));
    cache.Insert(keys.back(), FakeResult({SegmentId(i)}));
    EXPECT_TRUE(cache.Lookup(keys.back()).has_value());  // promote
  }
  ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.promotions, 3u);
  EXPECT_GE(stats.demotions, 1u);
  // All three still resident (demotion moves, never drops).
  for (const PlanKey& k : keys) EXPECT_TRUE(cache.Lookup(k).has_value());
}

// --- Per-tenant capacity envelopes ------------------------------------------

TEST(ResultCacheTenantEnvelopeTest, HotTenantFloodCannotEvictColdTenant) {
  // Envelope 0.5 of a 64-entry shard: the hot tenant caps at 32 resident
  // entries and evicts its own LRU once there; the cold tenant's 8
  // entries survive a 1000-insert flood untouched.
  ResultCache cache(300, {.capacity = 64,
                          .shards = 1,
                          .tenant_capacity_share = 0.5});
  const TenantId cold = 1, hot = 2;
  std::vector<PlanKey> cold_keys;
  for (int i = 0; i < 8; ++i) {
    QueryPlan plan = HandPlan(HMS(8), 300 + 60 * i);
    plan.tenant = cold;
    cold_keys.push_back(MakePlanKey(plan));
    cache.Insert(cold_keys.back(), FakeResult({SegmentId(i)}), cold);
  }
  for (int i = 0; i < 1000; ++i) {
    QueryPlan plan = HandPlan(HMS(13), 300 + 60 * i);
    plan.tenant = hot;
    cache.Insert(MakePlanKey(plan), FakeResult({999}), hot);
  }
  EXPECT_LE(cache.TenantSize(hot), 32u);
  EXPECT_EQ(cache.TenantSize(cold), 8u);
  for (size_t i = 0; i < cold_keys.size(); ++i) {
    EXPECT_TRUE(cache.Lookup(cold_keys[i]).has_value())
        << "hot flood evicted cold entry " << i;
  }
  ResultCache::Stats stats = cache.stats();
  EXPECT_GT(stats.tenant_evictions, 0u);
  EXPECT_EQ(stats.evictions, 0u)
      << "the shard never filled; every eviction must be envelope-driven";
}

// --- Executor front door: cached == uncached --------------------------------

TEST(ResultCacheExecutorTest, CachedResultsAreBitIdenticalToUncached) {
  auto& stack = GetSharedStack();
  auto plan = stack.engine->planner().PlanSQuery(
      {stack.dataset.center, HMS(11), 600, 0.2});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  auto uncached = stack.engine->MakeExecutor({.num_threads = 1});
  auto reference = uncached->Execute(*plan);
  ASSERT_TRUE(reference.ok());

  QueryExecutorOptions opt;
  opt.num_threads = 2;
  opt.result_cache_entries = 64;
  auto cached = stack.engine->MakeExecutor(opt);
  auto first = cached->Execute(*plan);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->stats.cache_hit);
  auto second = cached->Execute(*plan);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->stats.cache_hit);

  for (const auto* r : {&*first, &*second}) {
    EXPECT_EQ(r->segments, reference->segments);
    EXPECT_DOUBLE_EQ(r->total_length_m, reference->total_length_m);
    EXPECT_EQ(r->stats.segments_verified, reference->stats.segments_verified);
  }
  QueryExecutor::FrontDoorStats stats = cached->front_door_stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_insertions, 1u);
}

TEST(ResultCacheExecutorTest, BatchesServeRepeatsFromCache) {
  auto& stack = GetSharedStack();
  auto plan = stack.engine->planner().PlanSQuery(
      {stack.dataset.center, HMS(10), 600, 0.1});
  ASSERT_TRUE(plan.ok());
  std::vector<QueryPlan> plans(5, *plan);

  QueryExecutorOptions opt;
  opt.num_threads = 4;
  opt.result_cache_entries = 64;
  auto executor = stack.engine->MakeExecutor(opt);
  auto warm = executor->ExecuteBatch(plans);
  ASSERT_EQ(warm.size(), plans.size());
  for (const auto& r : warm) ASSERT_TRUE(r.ok()) << r.status().ToString();

  auto repeat = executor->ExecuteBatch(plans);
  ASSERT_EQ(repeat.size(), plans.size());
  for (size_t i = 0; i < repeat.size(); ++i) {
    ASSERT_TRUE(repeat[i].ok());
    EXPECT_TRUE(repeat[i]->stats.cache_hit) << "plan " << i;
    EXPECT_EQ(repeat[i]->segments, warm[i]->segments);
  }
  EXPECT_GE(executor->front_door_stats().cache_hits, plans.size());
}

// --- Δt-slot invalidation end to end ----------------------------------------

TEST(ResultCacheExecutorTest, SpeedRefreshInvalidatesAffectedSlotsOnly) {
  // Fresh engine: this test mutates the speed profile, which must never
  // leak into the shared stack other suites measure against.
  auto& stack = GetSharedStack();
  EngineOptions opt;
  opt.work_dir = testing_util::MakeTempDir("cache_invalidation");
  opt.delta_t_seconds = 300;
  opt.query_threads = 2;
  opt.result_cache_entries = 128;
  auto built = ReachabilityEngine::Build(stack.dataset.network,
                                         *stack.dataset.store, opt);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ReachabilityEngine& engine = **built;

  auto rush = engine.planner().PlanSQuery(
      {stack.dataset.center, HMS(11), 600, 0.2});
  auto morning = engine.planner().PlanSQuery(
      {stack.dataset.center, HMS(9), 600, 0.2});
  ASSERT_TRUE(rush.ok());
  ASSERT_TRUE(morning.ok());

  // Prime the cache with both windows.
  auto rush_cold = engine.executor().Execute(*rush);
  auto morning_cold = engine.executor().Execute(*morning);
  ASSERT_TRUE(rush_cold.ok());
  ASSERT_TRUE(morning_cold.ok());
  ASSERT_TRUE(engine.executor().Execute(*rush)->stats.cache_hit);

  // A live observation at 11:05 covers the 11:00-12:00 profile slot: the
  // rush entry must drop, the morning entry must keep serving.
  SegmentId start_seg = rush->location_starts[0][0];
  engine.ApplySpeedObservation(start_seg, HMS(11, 5), 0.8);
  EXPECT_GT(engine.executor().front_door_stats().cache_invalidated, 0u);

  auto morning_warm = engine.executor().Execute(*morning);
  ASSERT_TRUE(morning_warm.ok());
  EXPECT_TRUE(morning_warm->stats.cache_hit);
  EXPECT_EQ(morning_warm->segments, morning_cold->segments);

  auto rush_after = engine.executor().Execute(*rush);
  ASSERT_TRUE(rush_after.ok());
  EXPECT_FALSE(rush_after->stats.cache_hit);

  // Post-invalidation result is bit-identical to an uncached recompute
  // over the refreshed profile (same engine, cache-free executor).
  auto uncached = engine.MakeExecutor({.num_threads = 1});
  auto recompute = uncached->Execute(*rush);
  ASSERT_TRUE(recompute.ok());
  EXPECT_EQ(rush_after->segments, recompute->segments);
  EXPECT_DOUBLE_EQ(rush_after->total_length_m, recompute->total_length_m);

  // And the refreshed entry serves the refreshed result.
  auto rush_warm = engine.executor().Execute(*rush);
  ASSERT_TRUE(rush_warm.ok());
  EXPECT_TRUE(rush_warm->stats.cache_hit);
  EXPECT_EQ(rush_warm->segments, recompute->segments);
}

// --- Concurrency hammer -----------------------------------------------------

TEST(ResultCacheExecutorTest, HammerMixedHotColdNeverTearsResults) {
  auto& stack = GetSharedStack();
  Mbr box = stack.engine->network().BoundingBox();
  const QueryPlanner& planner = stack.engine->planner();

  // One hot plan plus a ring of cold ones; a tiny cache forces constant
  // insert/evict churn under the lookups.
  std::vector<QueryPlan> plans;
  auto add = [&](const SQuery& q) {
    auto plan = planner.PlanSQuery(q);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    plans.push_back(std::move(plan).value());
  };
  add({stack.dataset.center, HMS(11), 600, 0.2});  // the hot spot
  for (int i = 0; i < 6; ++i) {
    XyPoint p{box.min_x() + box.Width() * (0.3 + 0.06 * i),
              box.min_y() + box.Height() * (0.35 + 0.05 * i)};
    add({p, HMS(9 + (i % 3)), 600 + 300 * (i % 2), 0.1});
  }

  std::vector<std::vector<SegmentId>> reference;
  auto sequential = stack.engine->MakeExecutor({.num_threads = 1});
  for (const QueryPlan& plan : plans) {
    auto r = sequential->Execute(plan);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    reference.push_back(r->segments);
  }

  QueryExecutorOptions opt;
  opt.num_threads = 4;
  opt.result_cache_entries = 4;  // far below working set
  opt.result_cache_shards = 2;
  auto executor = stack.engine->MakeExecutor(opt);

  constexpr int kThreads = 8;
  constexpr int kRounds = 40;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};

  // One thread keeps invalidating the hot window while clients hammer it.
  std::thread invalidator([&] {
    while (!stop.load()) {
      executor->InvalidateCachedTimeRange(HMS(11), HMS(11, 10));
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        // Even threads stay hot; odd threads walk the cold ring.
        size_t i = (t % 2 == 0) ? 0 : 1 + ((t + round) % (plans.size() - 1));
        auto r = executor->Execute(plans[i]);
        if (!r.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (r->segments != reference[i]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  stop.store(true);
  invalidator.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  QueryExecutor::FrontDoorStats stats = executor->front_door_stats();
  EXPECT_GT(stats.cache_hits, 0u);   // the hot spot paid off
  EXPECT_GT(stats.cache_misses, 0u);  // churn really happened
}

}  // namespace
}  // namespace strr
