// Tests for SpeedProfile, StIndex and ConIndex against the shared small
// dataset and hand-built fixtures.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "index/con_index.h"
#include "index/speed_profile.h"
#include "index/st_index.h"
#include "roadnet/expansion.h"
#include "tests/test_util.h"

namespace strr {
namespace {

using testing_util::GetSharedStack;
using testing_util::MakeGridNetwork;
using testing_util::MakeTempDir;

/// Hand-built store: one taxi crossing segment 0 at 08:00 on days 0 and 2,
/// fast on day 0 (20 m/s) and slow on day 2 (4 m/s).
std::unique_ptr<TrajectoryStore> TinyStore() {
  auto store = std::make_unique<TrajectoryStore>(3);
  MatchedTrajectory t0;
  t0.id = 0;
  t0.taxi = 0;
  t0.day = 0;
  t0.samples = {{0, MakeTimestamp(0, HMS(8)), 20.0f},
                {1, MakeTimestamp(0, HMS(8, 1)), 20.0f}};
  EXPECT_TRUE(store->Add(std::move(t0)).ok());
  MatchedTrajectory t2;
  t2.id = 1;
  t2.taxi = 0;
  t2.day = 2;
  t2.samples = {{0, MakeTimestamp(2, HMS(8)), 4.0f}};
  EXPECT_TRUE(store->Add(std::move(t2)).ok());
  return store;
}

// --- SpeedProfile ------------------------------------------------------------

TEST(SpeedProfileTest, MinMaxMeanFromObservations) {
  RoadNetwork net = MakeGridNetwork(2, 3, 300.0);
  auto store = TinyStore();
  auto profile = SpeedProfile::Build(net, *store);
  ASSERT_TRUE(profile.ok());
  EXPECT_TRUE(profile->HasObservations(0, HMS(8)));
  EXPECT_DOUBLE_EQ(profile->MinSpeed(0, HMS(8)), 4.0);
  EXPECT_DOUBLE_EQ(profile->MaxSpeed(0, HMS(8)), 20.0);
  EXPECT_DOUBLE_EQ(profile->MeanSpeed(0, HMS(8)), 12.0);
}

TEST(SpeedProfileTest, FallbackToLevelAggregate) {
  RoadNetwork net = MakeGridNetwork(2, 3, 300.0);
  auto store = TinyStore();
  auto profile = SpeedProfile::Build(net, *store);
  ASSERT_TRUE(profile.ok());
  // Segment 5 has no samples but shares the local level with segment 0.
  EXPECT_FALSE(profile->HasObservations(5, HMS(8)));
  EXPECT_DOUBLE_EQ(profile->MinSpeed(5, HMS(8)), 4.0);
  EXPECT_DOUBLE_EQ(profile->MaxSpeed(5, HMS(8)), 20.0);
}

TEST(SpeedProfileTest, FallbackToFreeFlowWhenNoDataAtAll) {
  RoadNetwork net = MakeGridNetwork(2, 3, 300.0);
  auto store = TinyStore();
  auto profile = SpeedProfile::Build(net, *store);
  ASSERT_TRUE(profile.ok());
  // 03:00 slot has no observations anywhere.
  double ff = FreeFlowSpeed(RoadLevel::kLocal);
  EXPECT_DOUBLE_EQ(profile->MaxSpeed(0, HMS(3)), ff);
  EXPECT_DOUBLE_EQ(profile->MinSpeed(0, HMS(3)), 0.2 * ff);
  EXPECT_DOUBLE_EQ(profile->MeanSpeed(0, HMS(3)), 0.7 * ff);
}

TEST(SpeedProfileTest, ZeroSpeedsDropped) {
  RoadNetwork net = MakeGridNetwork(2, 3, 300.0);
  auto store = std::make_unique<TrajectoryStore>(1);
  MatchedTrajectory t;
  t.id = 0;
  t.day = 0;
  t.samples = {{0, MakeTimestamp(0, HMS(8)), 0.0f},   // parked: dropped
               {0, MakeTimestamp(0, HMS(8, 1)), 6.0f}};
  ASSERT_TRUE(store->Add(std::move(t)).ok());
  auto profile = SpeedProfile::Build(net, *store);
  ASSERT_TRUE(profile.ok());
  EXPECT_DOUBLE_EQ(profile->MinSpeed(0, HMS(8)), 6.0);
}

TEST(SpeedProfileTest, SlotWidthValidation) {
  RoadNetwork net = MakeGridNetwork(2, 2, 300.0);
  auto store = TinyStore();
  EXPECT_FALSE(SpeedProfile::Build(net, *store, {.slot_seconds = 0}).ok());
  EXPECT_FALSE(SpeedProfile::Build(net, *store, {.slot_seconds = 7000}).ok());
  EXPECT_TRUE(SpeedProfile::Build(net, *store, {.slot_seconds = 1800}).ok());
}

TEST(SpeedProfileTest, CoverageFractionOnSharedDataset) {
  auto& stack = GetSharedStack();
  const auto& profile = stack.engine->speed_profile();
  double coverage = profile.CoverageFraction();
  EXPECT_GT(coverage, 0.02);
  EXPECT_LE(coverage, 1.0);
}

// --- StIndex -----------------------------------------------------------------

class StIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = MakeGridNetwork(2, 3, 300.0);
    store_ = TinyStore();
    StIndexOptions opt;
    opt.slot_seconds = 300;
    opt.posting_path = MakeTempDir("st") + "/postings.bin";
    auto index = StIndex::Build(net_, *store_, opt);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    index_ = std::move(*index);
  }

  RoadNetwork net_;
  std::unique_ptr<TrajectoryStore> store_;
  std::unique_ptr<StIndex> index_;
};

TEST_F(StIndexTest, SlotLookups) {
  EXPECT_EQ(index_->slots_per_day(), 288);
  EXPECT_EQ(index_->SlotForTime(0), 0);
  EXPECT_EQ(index_->SlotForTime(299), 0);
  EXPECT_EQ(index_->SlotForTime(HMS(8)), 96);
  EXPECT_EQ(index_->SlotForTime(HMS(23, 59)), 287);
}

TEST_F(StIndexTest, SlotsCoveringRanges) {
  auto slots = index_->SlotsCovering(HMS(8), HMS(8) + 600);
  EXPECT_EQ(slots, (std::vector<SlotId>{96, 97}));
  slots = index_->SlotsCovering(HMS(8), HMS(8) + 1);
  EXPECT_EQ(slots, (std::vector<SlotId>{96}));
  EXPECT_TRUE(index_->SlotsCovering(100, 100).empty());
  // Clamped to end of day.
  slots = index_->SlotsCovering(HMS(23, 55), HMS(23, 55) + 900);
  EXPECT_EQ(slots, (std::vector<SlotId>{287}));
}

TEST_F(StIndexTest, LocateSegmentFindsNearest) {
  // Point just above the middle of segment 0 (bottom-left horizontal road).
  auto seg = index_->LocateSegment({150.0, 5.0});
  ASSERT_TRUE(seg.ok());
  double d = net_.segment(*seg).shape.Project({150.0, 5.0}).distance;
  auto brute = net_.NearestSegmentBruteForce({150.0, 5.0});
  ASSERT_TRUE(brute.ok());
  double bd = net_.segment(*brute).shape.Project({150.0, 5.0}).distance;
  EXPECT_NEAR(d, bd, 1e-9);
}

TEST_F(StIndexTest, TimeListsMatchStoreContents) {
  SlotId slot = index_->SlotForTime(HMS(8));
  auto lists = index_->ReadTimeList(0, slot);
  ASSERT_TRUE(lists.ok());
  ASSERT_EQ(lists->size(), 3u);  // 3 days
  EXPECT_EQ((*lists)[0], (std::vector<TrajectoryId>{0}));
  EXPECT_TRUE((*lists)[1].empty());
  EXPECT_EQ((*lists)[2], (std::vector<TrajectoryId>{1}));
}

TEST_F(StIndexTest, NoTrafficSlotsEmptyWithoutIo) {
  SlotId slot = index_->SlotForTime(HMS(3));
  EXPECT_FALSE(index_->HasTraffic(0, slot));
  index_->ResetStorageStats();
  auto lists = index_->ReadTimeList(0, slot);
  ASSERT_TRUE(lists.ok());
  for (const auto& day : *lists) EXPECT_TRUE(day.empty());
  EXPECT_EQ(index_->storage_stats().TotalRequests(), 0u);
}

TEST_F(StIndexTest, SegmentsInRange) {
  auto segs = index_->SegmentsInRange(Mbr(-10, -10, 310, 10));
  // Bottom edge of the grid: both directions of segment pair 0 at least.
  EXPECT_GE(segs.size(), 2u);
  for (SegmentId s : segs) {
    EXPECT_TRUE(
        net_.segment(s).bounding_box().Intersects(Mbr(-10, -10, 310, 10)));
  }
}

TEST_F(StIndexTest, ReadCostsIo) {
  index_->ResetStorageStats();
  index_->DropCache();
  SlotId slot = index_->SlotForTime(HMS(8));
  ASSERT_TRUE(index_->ReadTimeList(0, slot).ok());
  auto stats = index_->storage_stats();
  EXPECT_GE(stats.cache_misses, 1u);
  ASSERT_TRUE(index_->ReadTimeList(0, slot).ok());
  stats = index_->storage_stats();
  EXPECT_GE(stats.cache_hits, 1u);
}

TEST_F(StIndexTest, BuildValidation) {
  StIndexOptions opt;  // missing posting path
  opt.slot_seconds = 300;
  EXPECT_TRUE(StIndex::Build(net_, *store_, opt).status().IsInvalidArgument());
  opt.posting_path = MakeTempDir("stbad") + "/p.bin";
  opt.slot_seconds = 0;
  EXPECT_TRUE(StIndex::Build(net_, *store_, opt).status().IsInvalidArgument());
}

TEST(StIndexSharedTest, EveryStoredSampleIsFindable) {
  auto& stack = GetSharedStack();
  const StIndex& index = stack.engine->st_index();
  // Spot-check 200 samples across the dataset: the trajectory id must be
  // present in the (segment, slot, day) time list.
  int checked = 0;
  stack.dataset.store->ForEach([&](const MatchedTrajectory& t) {
    if (checked >= 200 || t.id % 37 != 0) return;
    for (size_t i = 0; i < t.samples.size(); i += 25) {
      const MatchedSample& s = t.samples[i];
      SlotId slot = SlotOf(s.timestamp, index.slot_seconds());
      auto lists = index.ReadTimeList(s.segment, slot);
      ASSERT_TRUE(lists.ok());
      const auto& day_list = (*lists)[t.day];
      EXPECT_TRUE(std::binary_search(day_list.begin(), day_list.end(), t.id))
          << "traj " << t.id << " missing from (" << s.segment << "," << slot
          << "," << t.day << ")";
      ++checked;
    }
  });
  EXPECT_GT(checked, 20);
}

// --- ConIndex ----------------------------------------------------------------

class ConIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = MakeGridNetwork(4, 4, 300.0);
    store_ = TinyStore();
    auto profile = SpeedProfile::Build(net_, *store_);
    ASSERT_TRUE(profile.ok());
    profile_ = std::make_unique<SpeedProfile>(std::move(*profile));
    ConIndexOptions opt;
    opt.delta_t_seconds = 120;
    auto con = ConIndex::Create(net_, *profile_, opt);
    ASSERT_TRUE(con.ok());
    con_ = std::move(*con);
  }

  RoadNetwork net_;
  std::unique_ptr<TrajectoryStore> store_;
  std::unique_ptr<SpeedProfile> profile_;
  std::unique_ptr<ConIndex> con_;
};

TEST_F(ConIndexTest, NearIsSubsetOfFar) {
  for (SegmentId seg = 0; seg < net_.NumSegments(); seg += 3) {
    const auto& near = con_->Near(seg, HMS(8));
    const auto& far = con_->Far(seg, HMS(8));
    EXPECT_TRUE(std::includes(far.begin(), far.end(), near.begin(), near.end()))
        << "Near not within Far for segment " << seg;
  }
}

TEST_F(ConIndexTest, ListsMatchDirectExpansion) {
  SegmentId seg = 5;
  const auto& far = con_->Far(seg, HMS(8));
  SpeedFn max_speed = [this](SegmentId id) {
    return profile_->MaxSpeed(id, HMS(8));
  };
  auto hits = ExpandFrom(net_, seg, 120.0, max_speed);
  std::vector<SegmentId> expected;
  for (const auto& h : hits) expected.push_back(h.segment);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(far, expected);
}

TEST_F(ConIndexTest, ContainsSelfWhenTraversable) {
  const auto& far = con_->Far(0, HMS(8));
  EXPECT_TRUE(std::binary_search(far.begin(), far.end(), 0u));
}

TEST_F(ConIndexTest, LazyMaterializationCounts) {
  EXPECT_EQ(con_->MaterializedTables(), 0u);
  con_->Far(0, HMS(8));
  EXPECT_EQ(con_->MaterializedTables(), 1u);
  con_->Near(0, HMS(8));  // same (seg, slot) table
  EXPECT_EQ(con_->MaterializedTables(), 1u);
  con_->Far(1, HMS(8));
  EXPECT_EQ(con_->MaterializedTables(), 2u);
  con_->Far(0, HMS(9));  // different profile slot
  EXPECT_EQ(con_->MaterializedTables(), 3u);
}

TEST_F(ConIndexTest, BuildAllMaterializesEverything) {
  ASSERT_TRUE(con_->BuildAll().ok());
  EXPECT_EQ(con_->MaterializedTables(),
            net_.NumSegments() *
                static_cast<size_t>(con_->num_profile_slots()));
  EXPECT_GT(con_->TotalListEntries(), 0u);
}

TEST_F(ConIndexTest, LazyEqualsPrecomputed) {
  ConIndexOptions opt;
  opt.delta_t_seconds = 120;
  auto pre = ConIndex::Create(net_, *profile_, opt);
  ASSERT_TRUE(pre.ok());
  ASSERT_TRUE((*pre)->BuildAll().ok());
  for (SegmentId seg = 0; seg < net_.NumSegments(); seg += 5) {
    EXPECT_EQ(con_->Far(seg, HMS(8)), (*pre)->Far(seg, HMS(8)));
    EXPECT_EQ(con_->Near(seg, HMS(8)), (*pre)->Near(seg, HMS(8)));
  }
}

TEST_F(ConIndexTest, LargerDeltaTReachesFurther) {
  ConIndexOptions big;
  big.delta_t_seconds = 360;
  auto con_big = ConIndex::Create(net_, *profile_, big);
  ASSERT_TRUE(con_big.ok());
  const auto& small_far = con_->Far(0, HMS(8));
  const auto& big_far = (*con_big)->Far(0, HMS(8));
  EXPECT_GE(big_far.size(), small_far.size());
  EXPECT_TRUE(std::includes(big_far.begin(), big_far.end(), small_far.begin(),
                            small_far.end()));
}

TEST_F(ConIndexTest, CongestionShrinksRushHourFar) {
  // Shared dataset has genuine rush-hour slowdowns; the tiny fixture does
  // not, so use the engine's con-index.
  auto& stack = GetSharedStack();
  const ConIndex& con = stack.engine->con_index();
  const RoadNetwork& net = stack.engine->network();
  size_t rush_total = 0, night_total = 0;
  for (SegmentId seg = 0; seg < net.NumSegments(); seg += 29) {
    rush_total += con.Far(seg, HMS(8)).size();
    night_total += con.Far(seg, HMS(13)).size();
  }
  EXPECT_LT(rush_total, night_total);
}

TEST_F(ConIndexTest, CreateValidation) {
  ConIndexOptions opt;
  opt.delta_t_seconds = 0;
  EXPECT_TRUE(
      ConIndex::Create(net_, *profile_, opt).status().IsInvalidArgument());
}

}  // namespace
}  // namespace strr
