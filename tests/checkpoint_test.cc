// Storage-engine completion tests: profile checkpoint round trips and
// corruption handling, journal checkpoint/truncate/recover bit-identity
// against a full-replay oracle, truncation-point sweeps, background
// compaction vs a sequential-read oracle (including crash-window overlap
// recovery), bounded-memory chunked replay, the TinyLFU block cache, and
// the posting-store bloom doorkeeper.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "live/epoch_manager.h"
#include "live/live_profile_manager.h"
#include "live/observation_journal.h"
#include "live/recovery_manager.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/checkpoint/compaction.h"
#include "storage/checkpoint/profile_checkpoint.h"
#include "storage/file_manager.h"
#include "storage/fs_util.h"
#include "storage/obs_table.h"
#include "storage/posting_store.h"
#include "tests/test_util.h"
#include "tools/crash_stream.h"

namespace strr {
namespace {

namespace fs = std::filesystem;
using testing_util::GetSharedStack;
using testing_util::MakeTempDir;

constexpr uint32_t kStreamSegments = 100;
constexpr int64_t kSlotSeconds = 3600;

std::string FreshDir(const std::string& tag) {
  std::string dir = MakeTempDir(tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

ObservationBatch StreamBatch(uint64_t seq) {
  return ObservationBatch{seq, crash_stream::GenBatch(seq, kStreamSegments)};
}

/// Oracle fold of the deterministic stream 1..last_seq, batch by batch —
/// exactly the boundaries the journal folds at, so sums are bit-exact.
CheckpointState OracleState(uint64_t last_seq) {
  CheckpointState state(kSlotSeconds);
  for (uint64_t seq = 1; seq <= last_seq; ++seq) {
    state.FoldObservations(crash_stream::GenBatch(seq, kStreamSegments));
  }
  return state;
}

void ExpectUpdatesBitIdentical(const std::vector<CoalescedUpdate>& got,
                               const std::vector<CoalescedUpdate>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].segment, want[i].segment) << "entry " << i;
    EXPECT_EQ(got[i].slot_tod, want[i].slot_tod) << "entry " << i;
    EXPECT_EQ(got[i].min_speed, want[i].min_speed) << "entry " << i;
    EXPECT_EQ(got[i].max_speed, want[i].max_speed) << "entry " << i;
    EXPECT_EQ(got[i].sum_speed, want[i].sum_speed) << "entry " << i;
    EXPECT_EQ(got[i].count, want[i].count) << "entry " << i;
  }
}

size_t CountFiles(const std::string& dir, const std::string& suffix) {
  size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      ++n;
    }
  }
  return n;
}

// --- Checkpoint file format --------------------------------------------------

TEST(ProfileCheckpointTest, RoundTripIsByteStable) {
  std::string dir = FreshDir("ckpt_roundtrip");
  std::vector<CoalescedUpdate> entries = OracleState(30).Snapshot();
  ASSERT_FALSE(entries.empty());

  std::string path = CheckpointFileName(dir, 7);
  STRR_ASSERT_OK(WriteProfileCheckpoint(path, 30, kSlotSeconds, entries));
  auto ckpt = ReadProfileCheckpoint(path);
  STRR_ASSERT_OK(ckpt.status());
  EXPECT_EQ(ckpt->covered_seq, 30u);
  EXPECT_EQ(ckpt->slot_seconds, kSlotSeconds);
  ExpectUpdatesBitIdentical(ckpt->entries, entries);

  // The same state always serializes to the same bytes.
  std::string path2 = CheckpointFileName(dir, 8);
  STRR_ASSERT_OK(WriteProfileCheckpoint(path2, 30, kSlotSeconds, entries));
  auto a = ReadFileToString(path);
  auto b = ReadFileToString(path2);
  STRR_ASSERT_OK(a.status());
  STRR_ASSERT_OK(b.status());
  EXPECT_EQ(*a, *b);
}

TEST(ProfileCheckpointTest, EmptyCheckpointRoundTrips) {
  std::string dir = FreshDir("ckpt_empty");
  std::string path = CheckpointFileName(dir, 1);
  STRR_ASSERT_OK(WriteProfileCheckpoint(path, 0, kSlotSeconds, {}));
  auto ckpt = ReadProfileCheckpoint(path);
  STRR_ASSERT_OK(ckpt.status());
  EXPECT_EQ(ckpt->covered_seq, 0u);
  EXPECT_TRUE(ckpt->entries.empty());
}

TEST(ProfileCheckpointTest, MutationSweepIsAlwaysTypedCorruption) {
  std::string dir = FreshDir("ckpt_flip");
  std::string path = CheckpointFileName(dir, 1);
  STRR_ASSERT_OK(WriteProfileCheckpoint(path, 12, kSlotSeconds,
                                        OracleState(12).Snapshot()));
  auto original = ReadFileToString(path);
  STRR_ASSERT_OK(original.status());

  size_t stride = std::max<size_t>(1, original->size() / 61);
  for (size_t pos = 0; pos < original->size(); pos += stride) {
    std::string mutated = *original;
    mutated[pos] ^= 0x08;
    auto parsed = ParseProfileCheckpoint(mutated, "mutated");
    ASSERT_FALSE(parsed.ok()) << "pos=" << pos;
    EXPECT_TRUE(parsed.status().IsCorruption())
        << "pos=" << pos << " " << parsed.status().ToString();
  }
  for (size_t cut : {size_t{0}, size_t{7}, original->size() / 2,
                     original->size() - 1}) {
    auto parsed = ParseProfileCheckpoint(original->substr(0, cut), "cut");
    ASSERT_FALSE(parsed.ok()) << "cut=" << cut;
    EXPECT_TRUE(parsed.status().IsCorruption()) << "cut=" << cut;
  }
}

TEST(CheckpointStateTest, FoldIsBatchingIndependentForExtremes) {
  // min/max/count must not depend on how the stream was split into
  // batches (the bit-identity argument recovery relies on).
  std::vector<SpeedObservation> all;
  for (uint64_t seq = 1; seq <= 20; ++seq) {
    auto batch = crash_stream::GenBatch(seq, kStreamSegments);
    all.insert(all.end(), batch.begin(), batch.end());
  }
  CheckpointState per_batch = OracleState(20);
  CheckpointState one_shot(kSlotSeconds);
  one_shot.FoldObservations(all);

  std::vector<CoalescedUpdate> a = per_batch.Snapshot();
  std::vector<CoalescedUpdate> b = one_shot.Snapshot();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].segment, b[i].segment);
    EXPECT_EQ(a[i].slot_tod, b[i].slot_tod) << "slot_tod must be canonical";
    EXPECT_EQ(a[i].min_speed, b[i].min_speed);
    EXPECT_EQ(a[i].max_speed, b[i].max_speed);
    EXPECT_EQ(a[i].count, b[i].count);
    // Canonicalized to the slot start.
    EXPECT_EQ(a[i].slot_tod % kSlotSeconds, 0);
  }
}

// --- Journal checkpointing ---------------------------------------------------

TEST(JournalCheckpointTest, CheckpointTruncatesAndRecoversBitIdentical) {
  std::string dir = FreshDir("ckpt_journal");
  constexpr uint64_t kBatches = 60;
  {
    auto recovered = RecoveryManager::Recover(dir);
    STRR_ASSERT_OK(recovered.status());
    ObservationJournalOptions jopt;
    jopt.dir = dir;
    jopt.memtable_flush_bytes = 512;  // several table seals
    jopt.slot_seconds = kSlotSeconds;
    jopt.checkpoint_interval_batches = 25;
    auto journal = ObservationJournal::Open(jopt, *recovered);
    STRR_ASSERT_OK(journal.status());
    for (uint64_t seq = 1; seq <= kBatches; ++seq) {
      STRR_ASSERT_OK(
          (*journal)->AppendBatch(StreamBatch(seq).observations).status());
    }
    (*journal)->WaitForMaintenance();
    auto stats = (*journal)->stats();
    EXPECT_GE(stats.checkpoints_written, 2u);
    EXPECT_EQ(stats.checkpoint_seq, 50u);
    EXPECT_GT(stats.checkpoint_entries, 0u);
    EXPECT_GT(stats.tables_truncated, 0u);
  }
  EXPECT_EQ(CountFiles(dir, ".ckpt"), 1u);

  auto recovered = RecoveryManager::Recover(dir);
  STRR_ASSERT_OK(recovered.status());
  EXPECT_EQ(recovered->checkpoint_seq, 50u);
  EXPECT_EQ(recovered->last_seq, kBatches);
  EXPECT_EQ(recovered->replay_batches(), kBatches - 50);

  // Delta batches beyond the checkpoint are bit-identical to the stream.
  auto delta = RecoveryManager::CollectBatches(*recovered);
  STRR_ASSERT_OK(delta.status());
  ASSERT_EQ(delta->size(), kBatches - 50);
  for (size_t i = 0; i < delta->size(); ++i) {
    EXPECT_EQ((*delta)[i].seq, 50 + i + 1);
  }

  // Checkpoint aggregates == oracle fold of the covered stream, sums
  // included (same per-batch fold boundaries).
  auto ckpt = ReadProfileCheckpoint(recovered->checkpoint_path);
  STRR_ASSERT_OK(ckpt.status());
  ExpectUpdatesBitIdentical(ckpt->entries, OracleState(50).Snapshot());

  // Checkpoint + delta folds to the identical full-stream state.
  CheckpointState rebuilt(kSlotSeconds);
  rebuilt.FoldUpdates(ckpt->entries);
  for (const ObservationBatch& batch : *delta) {
    rebuilt.FoldObservations(batch.observations);
  }
  ExpectUpdatesBitIdentical(rebuilt.Snapshot(),
                            OracleState(kBatches).Snapshot());
}

TEST(JournalCheckpointTest, TruncationPointSweep) {
  // Whatever the checkpoint interval (hence wherever truncation lands
  // relative to table boundaries), recovery reproduces the full state.
  for (uint64_t interval : {1u, 7u, 13u, 40u}) {
    std::string dir = FreshDir("ckpt_sweep_" + std::to_string(interval));
    constexpr uint64_t kBatches = 41;
    {
      auto recovered = RecoveryManager::Recover(dir);
      STRR_ASSERT_OK(recovered.status());
      ObservationJournalOptions jopt;
      jopt.dir = dir;
      jopt.memtable_flush_bytes = 700;
      jopt.slot_seconds = kSlotSeconds;
      jopt.checkpoint_interval_batches = interval;
      auto journal = ObservationJournal::Open(jopt, *recovered);
      STRR_ASSERT_OK(journal.status());
      for (uint64_t seq = 1; seq <= kBatches; ++seq) {
        STRR_ASSERT_OK(
            (*journal)->AppendBatch(StreamBatch(seq).observations).status());
      }
      (*journal)->WaitForMaintenance();
    }
    auto recovered = RecoveryManager::Recover(dir);
    STRR_ASSERT_OK(recovered.status());
    EXPECT_EQ(recovered->last_seq, kBatches) << "interval=" << interval;
    EXPECT_GT(recovered->checkpoint_seq, 0u) << "interval=" << interval;

    CheckpointState rebuilt(kSlotSeconds);
    if (!recovered->checkpoint_path.empty()) {
      auto ckpt = ReadProfileCheckpoint(recovered->checkpoint_path);
      STRR_ASSERT_OK(ckpt.status());
      rebuilt.FoldUpdates(ckpt->entries);
    }
    STRR_ASSERT_OK(RecoveryManager::ForEachReplayBatch(
        *recovered, [&](const ObservationBatch& batch) {
          rebuilt.FoldObservations(batch.observations);
          return Status::OK();
        }));
    ExpectUpdatesBitIdentical(rebuilt.Snapshot(),
                              OracleState(kBatches).Snapshot());
  }
}

TEST(JournalCheckpointTest, RestartContinuesAcrossCheckpoint) {
  // Re-opening a checkpointed journal rebuilds the accumulator from the
  // checkpoint + residual batches; the next checkpoint still matches the
  // full-stream oracle.
  std::string dir = FreshDir("ckpt_restart");
  ObservationJournalOptions jopt;
  jopt.dir = dir;
  jopt.memtable_flush_bytes = 512;
  jopt.slot_seconds = kSlotSeconds;
  jopt.checkpoint_interval_batches = 10;
  {
    auto recovered = RecoveryManager::Recover(dir);
    STRR_ASSERT_OK(recovered.status());
    auto journal = ObservationJournal::Open(jopt, *recovered);
    STRR_ASSERT_OK(journal.status());
    for (uint64_t seq = 1; seq <= 25; ++seq) {
      STRR_ASSERT_OK(
          (*journal)->AppendBatch(StreamBatch(seq).observations).status());
    }
    (*journal)->WaitForMaintenance();
  }
  {
    auto recovered = RecoveryManager::Recover(dir);
    STRR_ASSERT_OK(recovered.status());
    EXPECT_EQ(recovered->last_seq, 25u);
    auto journal = ObservationJournal::Open(jopt, *recovered);
    STRR_ASSERT_OK(journal.status());
    for (uint64_t seq = 26; seq <= 40; ++seq) {
      auto acked = (*journal)->AppendBatch(StreamBatch(seq).observations);
      STRR_ASSERT_OK(acked.status());
      EXPECT_EQ(*acked, seq);
    }
    // An explicit checkpoint covers everything acked so far.
    STRR_ASSERT_OK((*journal)->Checkpoint());
    (*journal)->WaitForMaintenance();
    EXPECT_EQ((*journal)->stats().checkpoint_seq, 40u);
  }
  auto recovered = RecoveryManager::Recover(dir);
  STRR_ASSERT_OK(recovered.status());
  EXPECT_EQ(recovered->checkpoint_seq, 40u);
  auto ckpt = ReadProfileCheckpoint(recovered->checkpoint_path);
  STRR_ASSERT_OK(ckpt.status());
  ExpectUpdatesBitIdentical(ckpt->entries, OracleState(40).Snapshot());
}

TEST(JournalCheckpointTest, CheckpointRequiresEnabledKnob) {
  std::string dir = FreshDir("ckpt_disabled");
  auto recovered = RecoveryManager::Recover(dir);
  STRR_ASSERT_OK(recovered.status());
  ObservationJournalOptions jopt;
  jopt.dir = dir;
  auto journal = ObservationJournal::Open(jopt, *recovered);
  STRR_ASSERT_OK(journal.status());
  Status s = (*journal)->Checkpoint();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST(RecoveryManagerTest, SupersededCheckpointIsRedundantAndCorruptIsFatal) {
  std::string dir = FreshDir("ckpt_windows");
  // Two committed checkpoints (the crash window between committing a new
  // one and deleting the old): the one covering more wins.
  STRR_ASSERT_OK(WriteProfileCheckpoint(CheckpointFileName(dir, 3), 10,
                                        kSlotSeconds,
                                        OracleState(10).Snapshot()));
  STRR_ASSERT_OK(WriteProfileCheckpoint(CheckpointFileName(dir, 5), 20,
                                        kSlotSeconds,
                                        OracleState(20).Snapshot()));
  // Tables continuing past the newest checkpoint.
  ObservationTableBuilder table;
  for (uint64_t seq = 21; seq <= 23; ++seq) table.AddBatch(StreamBatch(seq));
  STRR_ASSERT_OK(table.Finish(ObservationTableFileName(dir, 6)));
  // A stray mid-write temp file must be ignored.
  STRR_ASSERT_OK(AtomicWriteFile(dir + "/ckpt_9.ckpt.tmp", "garbage"));

  auto recovered = RecoveryManager::Recover(dir);
  STRR_ASSERT_OK(recovered.status());
  EXPECT_EQ(recovered->checkpoint_seq, 20u);
  EXPECT_EQ(recovered->checkpoint_number, 5u);
  EXPECT_EQ(recovered->last_seq, 23u);
  bool old_redundant = false;
  for (const std::string& path : recovered->redundant_paths) {
    if (path == CheckpointFileName(dir, 3)) old_redundant = true;
  }
  EXPECT_TRUE(old_redundant);

  // A committed-but-corrupt checkpoint is fatal, never silently skipped.
  {
    auto bytes = ReadFileToString(CheckpointFileName(dir, 5));
    STRR_ASSERT_OK(bytes.status());
    std::string mutated = *bytes;
    mutated[mutated.size() / 2] ^= 0x01;
    std::ofstream out(CheckpointFileName(dir, 5),
                      std::ios::binary | std::ios::trunc);
    out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
  }
  auto broken = RecoveryManager::Recover(dir);
  ASSERT_FALSE(broken.ok());
  EXPECT_TRUE(broken.status().IsCorruption()) << broken.status().ToString();
}

// --- Compaction --------------------------------------------------------------

TEST(CompactionTest, MergeMatchesSequentialReadOracle) {
  std::string dir = FreshDir("compact_merge");
  std::vector<std::string> inputs;
  uint64_t seq = 1;
  for (uint64_t n = 1; n <= 4; ++n) {
    ObservationTableBuilder table;
    for (int i = 0; i < 5; ++i) table.AddBatch(StreamBatch(seq++));
    std::string path = ObservationTableFileName(dir, n);
    STRR_ASSERT_OK(table.Finish(path));
    inputs.push_back(path);
  }
  std::string out = ObservationTableFileName(dir, 9);
  auto result = CompactTables(inputs, out);
  STRR_ASSERT_OK(result.status());
  EXPECT_EQ(result->first_seq, 1u);
  EXPECT_EQ(result->last_seq, 20u);
  EXPECT_EQ(result->batches, 20u);

  auto merged = ObservationTable::Open(out);
  STRR_ASSERT_OK(merged.status());
  std::vector<ObservationBatch> got = merged->TakeBatches();
  ASSERT_EQ(got.size(), 20u);
  for (uint64_t s = 1; s <= 20; ++s) {
    const ObservationBatch& batch = got[s - 1];
    ASSERT_EQ(batch.seq, s);
    std::vector<SpeedObservation> want =
        crash_stream::GenBatch(s, kStreamSegments);
    ASSERT_EQ(batch.observations.size(), want.size());
    for (size_t k = 0; k < want.size(); ++k) {
      EXPECT_EQ(batch.observations[k].segment, want[k].segment);
      EXPECT_EQ(batch.observations[k].time_of_day_sec,
                want[k].time_of_day_sec);
      EXPECT_EQ(batch.observations[k].speed_mps, want[k].speed_mps);
    }
  }
  // The rebuilt bloom has no false negatives over merged segments.
  for (const ObservationBatch& batch : got) {
    for (const SpeedObservation& obs : batch.observations) {
      EXPECT_TRUE(merged->MayContainSegment(obs.segment));
    }
  }
}

TEST(CompactionTest, OverlapDeduplicatesAndGapIsCorruption) {
  std::string dir = FreshDir("compact_edge");
  auto build = [&](uint64_t number, uint64_t first,
                   uint64_t last) -> std::string {
    ObservationTableBuilder table;
    for (uint64_t s = first; s <= last; ++s) table.AddBatch(StreamBatch(s));
    std::string path = ObservationTableFileName(dir, number);
    EXPECT_TRUE(table.Finish(path).ok());
    return path;
  };
  // Overlap: [1,4] + [3,6] merges to exactly 1..6.
  std::vector<std::string> overlap = {build(1, 1, 4), build(2, 3, 6)};
  auto merged = CompactTables(overlap, ObservationTableFileName(dir, 5));
  STRR_ASSERT_OK(merged.status());
  EXPECT_EQ(merged->batches, 6u);
  EXPECT_EQ(merged->last_seq, 6u);

  // Gap: [1,2] + [5,6] is Corruption, no output committed.
  std::vector<std::string> gapped = {build(3, 1, 2), build(4, 5, 6)};
  std::string out = ObservationTableFileName(dir, 6);
  auto gap = CompactTables(gapped, out);
  ASSERT_FALSE(gap.ok());
  EXPECT_TRUE(gap.status().IsCorruption()) << gap.status().ToString();
  EXPECT_FALSE(fs::exists(out));
}

TEST(JournalCompactionTest, BackgroundMergeReducesTablesKeepsStream) {
  std::string dir = FreshDir("compact_journal");
  constexpr uint64_t kBatches = 80;
  size_t tables_before = 0;
  {
    auto recovered = RecoveryManager::Recover(dir);
    STRR_ASSERT_OK(recovered.status());
    ObservationJournalOptions jopt;
    jopt.dir = dir;
    jopt.memtable_flush_bytes = 512;  // many small tables
    jopt.compaction = true;
    jopt.compaction_small_bytes = 1 << 20;
    jopt.compaction_min_tables = 3;
    jopt.compaction_max_tables = 6;
    auto journal = ObservationJournal::Open(jopt, *recovered);
    STRR_ASSERT_OK(journal.status());
    for (uint64_t seq = 1; seq <= kBatches; ++seq) {
      STRR_ASSERT_OK(
          (*journal)->AppendBatch(StreamBatch(seq).observations).status());
    }
    (*journal)->WaitForMaintenance();
    auto stats = (*journal)->stats();
    EXPECT_GT(stats.compactions, 0u);
    EXPECT_GT(stats.tables_compacted, stats.compactions)
        << "each merge consumes several inputs";
    tables_before = stats.tables_flushed;
    EXPECT_LT(stats.live_tables, stats.tables_flushed);
  }
  EXPECT_LT(CountFiles(dir, ".tbl"), tables_before);

  // The merged directory still recovers the exact full stream.
  auto recovered = RecoveryManager::Recover(dir);
  STRR_ASSERT_OK(recovered.status());
  EXPECT_EQ(recovered->last_seq, kBatches);
  auto batches = RecoveryManager::CollectBatches(*recovered);
  STRR_ASSERT_OK(batches.status());
  ASSERT_EQ(batches->size(), kBatches);
  for (uint64_t seq = 1; seq <= kBatches; ++seq) {
    EXPECT_EQ((*batches)[seq - 1].seq, seq);
  }
}

TEST(RecoveryManagerTest, CompactionCrashWindowMergedBesideInputs) {
  // The swap crash window: the merged table is committed but the inputs
  // are not yet deleted. Recovery must keep exactly one copy of every
  // batch and report the covered inputs as redundant.
  std::string dir = FreshDir("compact_crash");
  for (uint64_t n = 1; n <= 3; ++n) {
    ObservationTableBuilder table;
    for (uint64_t s = (n - 1) * 4 + 1; s <= n * 4; ++s) {
      table.AddBatch(StreamBatch(s));
    }
    STRR_ASSERT_OK(table.Finish(ObservationTableFileName(dir, n)));
  }
  // Merged table covering all of 1..12, higher file number.
  {
    std::vector<std::string> inputs;
    for (uint64_t n = 1; n <= 3; ++n) {
      inputs.push_back(ObservationTableFileName(dir, n));
    }
    STRR_ASSERT_OK(
        CompactTables(inputs, ObservationTableFileName(dir, 4)).status());
  }
  // Plus a table continuing past the merge (the live tail).
  {
    ObservationTableBuilder table;
    for (uint64_t s = 13; s <= 15; ++s) table.AddBatch(StreamBatch(s));
    STRR_ASSERT_OK(table.Finish(ObservationTableFileName(dir, 5)));
  }

  auto recovered = RecoveryManager::Recover(dir);
  STRR_ASSERT_OK(recovered.status());
  EXPECT_EQ(recovered->last_seq, 15u);
  EXPECT_EQ(recovered->redundant_paths.size(), 3u);
  auto batches = RecoveryManager::CollectBatches(*recovered);
  STRR_ASSERT_OK(batches.status());
  ASSERT_EQ(batches->size(), 15u);
  for (uint64_t seq = 1; seq <= 15; ++seq) {
    EXPECT_EQ((*batches)[seq - 1].seq, seq);
  }

  // Opening the journal over this recovery deletes the redundant inputs.
  ObservationJournalOptions jopt;
  jopt.dir = dir;
  auto journal = ObservationJournal::Open(jopt, *recovered);
  STRR_ASSERT_OK(journal.status());
  EXPECT_FALSE(fs::exists(ObservationTableFileName(dir, 1)));
  EXPECT_FALSE(fs::exists(ObservationTableFileName(dir, 2)));
  EXPECT_FALSE(fs::exists(ObservationTableFileName(dir, 3)));
  EXPECT_TRUE(fs::exists(ObservationTableFileName(dir, 4)));
}

// --- Chunked replay (bounded-memory regression) ------------------------------

TEST(ReplayChunkTest, ForcedSmallChunksMatchUnchunkedReplay) {
  // The re-coalesce map is bounded by chunk_observations; a forced-tiny
  // chunk must publish the same profile extremes as one big chunk.
  auto& stack = GetSharedStack();
  const uint32_t num_segments =
      static_cast<uint32_t>(stack.dataset.network.NumSegments());
  std::string dir = FreshDir("replay_chunk");
  constexpr uint64_t kBatches = 30;
  {
    auto recovered = RecoveryManager::Recover(dir);
    STRR_ASSERT_OK(recovered.status());
    ObservationJournalOptions jopt;
    jopt.dir = dir;
    jopt.memtable_flush_bytes = 1024;
    auto journal = ObservationJournal::Open(jopt, *recovered);
    STRR_ASSERT_OK(journal.status());
    for (uint64_t seq = 1; seq <= kBatches; ++seq) {
      STRR_ASSERT_OK(
          (*journal)
              ->AppendBatch(crash_stream::GenBatch(seq, num_segments))
              .status());
    }
  }
  auto recovered = RecoveryManager::Recover(dir);
  STRR_ASSERT_OK(recovered.status());

  const SpeedProfile& base = stack.engine->speed_profile();
  EpochManager epochs_small, epochs_big;
  LiveProfileManager small(epochs_small, base, stack.engine->con_index());
  LiveProfileManager big(epochs_big, base, stack.engine->con_index());

  RecoveryManager::ReplayOptions tiny;
  tiny.chunk_observations = 3;
  auto publishes_small = RecoveryManager::Replay(*recovered, small, tiny);
  STRR_ASSERT_OK(publishes_small.status());
  RecoveryManager::ReplayOptions huge;
  huge.chunk_observations = 1 << 20;
  auto publishes_big = RecoveryManager::Replay(*recovered, big, huge);
  STRR_ASSERT_OK(publishes_big.status());
  EXPECT_GT(*publishes_small, *publishes_big);

  SnapshotRef a = small.Acquire();
  SnapshotRef b = big.Acquire();
  for (uint64_t seq = 1; seq <= kBatches; ++seq) {
    for (const SpeedObservation& obs :
         crash_stream::GenBatch(seq, num_segments)) {
      EXPECT_EQ(a.profile().MinSpeed(obs.segment, obs.time_of_day_sec),
                b.profile().MinSpeed(obs.segment, obs.time_of_day_sec));
      EXPECT_EQ(a.profile().MaxSpeed(obs.segment, obs.time_of_day_sec),
                b.profile().MaxSpeed(obs.segment, obs.time_of_day_sec));
    }
  }
}

// --- TinyLFU block cache -----------------------------------------------------

/// Writes `num_pages` pages whose first byte identifies the page.
std::unique_ptr<FileManager> MakePageFile(const std::string& path,
                                          uint64_t num_pages) {
  auto file = FileManager::Create(path, 4096);
  EXPECT_TRUE(file.ok());
  for (uint64_t i = 0; i < num_pages; ++i) {
    auto id = (*file)->AllocatePage();
    EXPECT_TRUE(id.ok());
    Page page(4096);
    char tag = static_cast<char>('A' + (i % 26));
    page.Write(0, &tag, 1);
    EXPECT_TRUE((*file)->WritePage(*id, page).ok());
  }
  return std::move(*file);
}

TEST(TinyLfuBlockCacheTest, ScanDoesNotFlushHotSet) {
  std::string dir = FreshDir("tinylfu_scan");
  auto file = MakePageFile(dir + "/pages.dat", 64);

  BufferPoolOptions opt;
  opt.capacity_pages = 8;
  opt.policy = CachePolicy::kTinyLfu;
  opt.protected_share = 0.5;
  BufferPool pool(file.get(), opt);

  // Earn the hot set frequency and protected-segment residency.
  for (int round = 0; round < 4; ++round) {
    for (PageId id = 0; id < 4; ++id) {
      char byte = 0;
      STRR_ASSERT_OK(pool.ReadInto(id, 0, &byte, 1));
    }
  }
  // One-shot scan over everything else.
  for (PageId id = 8; id < 64; ++id) {
    char byte = 0;
    STRR_ASSERT_OK(pool.ReadInto(id, 0, &byte, 1));
  }
  BufferPool::Detail detail = pool.detail();
  EXPECT_GT(detail.admission_rejects, 0u)
      << "cold scan pages must lose the admission contest";
  EXPECT_GT(detail.protected_pages, 0u);
  EXPECT_LE(detail.probation_pages + detail.protected_pages, 8u);

  // The hot set survived the scan: re-touching it adds no misses.
  uint64_t misses_before = pool.stats().cache_misses;
  for (PageId id = 0; id < 4; ++id) {
    char byte = 0;
    STRR_ASSERT_OK(pool.ReadInto(id, 0, &byte, 1));
    EXPECT_EQ(byte, static_cast<char>('A' + id));
  }
  EXPECT_EQ(pool.stats().cache_misses, misses_before);

  // The same workload under plain LRU loses the hot set to the scan.
  BufferPoolOptions lru_opt;
  lru_opt.capacity_pages = 8;
  BufferPool lru(file.get(), lru_opt);
  for (int round = 0; round < 4; ++round) {
    for (PageId id = 0; id < 4; ++id) {
      char byte = 0;
      STRR_ASSERT_OK(lru.ReadInto(id, 0, &byte, 1));
    }
  }
  for (PageId id = 8; id < 64; ++id) {
    char byte = 0;
    STRR_ASSERT_OK(lru.ReadInto(id, 0, &byte, 1));
  }
  misses_before = lru.stats().cache_misses;
  for (PageId id = 0; id < 4; ++id) {
    char byte = 0;
    STRR_ASSERT_OK(lru.ReadInto(id, 0, &byte, 1));
  }
  EXPECT_GT(lru.stats().cache_misses, misses_before);
  EXPECT_EQ(lru.detail().protected_pages, 0u) << "LRU is single-segment";
}

TEST(TinyLfuBlockCacheTest, EvictionKeepsCapacityAndServesCorrectBytes) {
  std::string dir = FreshDir("tinylfu_evict");
  auto file = MakePageFile(dir + "/pages.dat", 32);
  BufferPoolOptions opt;
  opt.capacity_pages = 4;
  opt.policy = CachePolicy::kTinyLfu;
  BufferPool pool(file.get(), opt);

  // Every page read returns its own bytes whether cached, evicted-and-
  // refetched, or served through the scratch frame on an admission reject.
  for (int round = 0; round < 3; ++round) {
    for (PageId id = 0; id < 32; ++id) {
      char byte = 0;
      STRR_ASSERT_OK(pool.ReadInto(id, 0, &byte, 1));
      EXPECT_EQ(byte, static_cast<char>('A' + (id % 26)))
          << "round=" << round << " page=" << id;
      EXPECT_LE(pool.CachedPages(), 4u);
    }
  }
  StorageStats stats = pool.stats();
  EXPECT_GT(stats.cache_misses, 0u);
  BufferPool::Detail detail = pool.detail();
  EXPECT_LE(detail.probation_pages + detail.protected_pages, 4u);
}

TEST(TinyLfuBlockCacheTest, PerRoleMetricSeriesAccounting) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter& role_hits = registry.GetCounter(
      "strr_bufferpool_hits_total", {{"role", "ckpt_test_role"}});
  obs::Counter& role_misses = registry.GetCounter(
      "strr_bufferpool_misses_total", {{"role", "ckpt_test_role"}});
  uint64_t hits0 = role_hits.Value();
  uint64_t misses0 = role_misses.Value();

  std::string dir = FreshDir("tinylfu_role");
  auto file = MakePageFile(dir + "/pages.dat", 8);
  BufferPoolOptions opt;
  opt.capacity_pages = 4;
  opt.policy = CachePolicy::kTinyLfu;
  opt.role = "ckpt_test_role";
  BufferPool pool(file.get(), opt);

  registry.set_enabled(true);
  for (int round = 0; round < 2; ++round) {
    for (PageId id = 0; id < 4; ++id) {
      char byte = 0;
      STRR_ASSERT_OK(pool.ReadInto(id, 0, &byte, 1));
    }
  }
  registry.set_enabled(false);

  EXPECT_EQ(role_misses.Value() - misses0, 4u);
  EXPECT_EQ(role_hits.Value() - hits0, 4u);
}

// --- Posting bloom doorkeeper ------------------------------------------------

TEST(PostingBloomTest, DoorkeeperShortCircuitsAbsentKeysNoFalseNegatives) {
  std::string dir = FreshDir("posting_bloom");
  std::string path = dir + "/postings.dat";
  std::vector<PostingKey> present;
  {
    auto builder = PostingStoreBuilder::Create(path);
    STRR_ASSERT_OK(builder.status());
    for (uint32_t seg = 0; seg < 40; seg += 2) {
      for (uint32_t slot = 0; slot < 4; ++slot) {
        PostingKey key = MakePostingKey(seg, slot);
        present.push_back(key);
        STRR_ASSERT_OK((*builder)->Add(key, "payload"));
      }
    }
    STRR_ASSERT_OK((*builder)->Finish());
  }
  PostingStoreOptions opt;
  opt.cache_pages = 8;
  opt.bloom_bits_per_key = 10;
  auto store = PostingStore::Open(path, opt);
  STRR_ASSERT_OK(store.status());

  // No false negatives: every present key passes the doorkeeper.
  for (PostingKey key : present) {
    EXPECT_TRUE((*store)->Contains(key));
    STRR_ASSERT_OK((*store)->Get(key).status());
  }
  EXPECT_EQ((*store)->BloomNegatives(), 0u);

  // Absent probes mostly short-circuit before the directory.
  for (uint32_t seg = 1000; seg < 1500; ++seg) {
    auto result = (*store)->Get(MakePostingKey(seg, 0));
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsNotFound());
  }
  EXPECT_GE((*store)->BloomNegatives(), 400u);
}

}  // namespace
}  // namespace strr
