#include "util/serialize.h"

#include <gtest/gtest.h>

#include <limits>
#include <random>

namespace strr {
namespace {

TEST(SerializeTest, FixedWidthRoundTrip) {
  BinaryWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutI32(-12345);
  w.PutI64(-9876543210LL);
  w.PutDouble(3.14159265358979);

  BinaryReader r(w.data());
  EXPECT_EQ(r.GetU8().value(), 0xAB);
  EXPECT_EQ(r.GetU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.GetI32().value(), -12345);
  EXPECT_EQ(r.GetI64().value(), -9876543210LL);
  EXPECT_DOUBLE_EQ(r.GetDouble().value(), 3.14159265358979);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, VarintSmallValuesAreOneByte) {
  BinaryWriter w;
  w.PutVarint32(0);
  w.PutVarint32(127);
  EXPECT_EQ(w.size(), 2u);
}

TEST(SerializeTest, VarintBoundaries32) {
  std::vector<uint32_t> values = {0,    1,    127,  128,   16383, 16384,
                                  1u << 21, (1u << 28) - 1,
                                  std::numeric_limits<uint32_t>::max()};
  BinaryWriter w;
  for (uint32_t v : values) w.PutVarint32(v);
  BinaryReader r(w.data());
  for (uint32_t v : values) {
    auto got = r.GetVarint32();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, VarintBoundaries64) {
  std::vector<uint64_t> values = {0, 1, 127, 128, 1ull << 35, 1ull << 56,
                                  std::numeric_limits<uint64_t>::max()};
  BinaryWriter w;
  for (uint64_t v : values) w.PutVarint64(v);
  BinaryReader r(w.data());
  for (uint64_t v : values) {
    auto got = r.GetVarint64();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
}

TEST(SerializeTest, VarintRandomRoundTrip) {
  std::mt19937_64 rng(99);
  BinaryWriter w;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng() >> (rng() % 64);
    values.push_back(v);
    w.PutVarint64(v);
  }
  BinaryReader r(w.data());
  for (uint64_t v : values) EXPECT_EQ(r.GetVarint64().value(), v);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, StringRoundTrip) {
  BinaryWriter w;
  w.PutString("");
  w.PutString("hello");
  w.PutString(std::string(1000, 'x'));
  BinaryReader r(w.data());
  EXPECT_EQ(r.GetString().value(), "");
  EXPECT_EQ(r.GetString().value(), "hello");
  EXPECT_EQ(r.GetString().value(), std::string(1000, 'x'));
}

TEST(SerializeTest, StringWithEmbeddedNulBytes) {
  std::string s = std::string("a\0b\0c", 5);
  BinaryWriter w;
  w.PutString(s);
  BinaryReader r(w.data());
  auto got = r.GetString();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 5u);
  EXPECT_EQ(*got, s);
}

TEST(SerializeTest, U32ListUnsorted) {
  std::vector<uint32_t> values = {5, 2, 9, 2, 0};
  BinaryWriter w;
  w.PutU32List(values, /*sorted=*/false);
  BinaryReader r(w.data());
  EXPECT_EQ(r.GetU32List(false).value(), values);
}

TEST(SerializeTest, U32ListSortedDeltaEncoding) {
  std::vector<uint32_t> values = {3, 3, 10, 500, 500, 1000000};
  BinaryWriter w;
  w.PutU32List(values, /*sorted=*/true);
  BinaryReader r(w.data());
  EXPECT_EQ(r.GetU32List(true).value(), values);
}

TEST(SerializeTest, SortedListIsSmallerForDenseIds) {
  std::vector<uint32_t> dense;
  for (uint32_t i = 1000000; i < 1000200; ++i) dense.push_back(i);
  BinaryWriter sorted, unsorted;
  sorted.PutU32List(dense, true);
  unsorted.PutU32List(dense, false);
  EXPECT_LT(sorted.size(), unsorted.size());
}

TEST(SerializeTest, EmptyListRoundTrip) {
  BinaryWriter w;
  w.PutU32List({}, true);
  BinaryReader r(w.data());
  EXPECT_TRUE(r.GetU32List(true).value().empty());
}

TEST(SerializeTest, TruncatedFixedReadsFail) {
  BinaryWriter w;
  w.PutU32(77);
  BinaryReader r(w.data().data(), 2);  // only half the u32
  EXPECT_TRUE(r.GetU32().status().IsCorruption());
}

TEST(SerializeTest, TruncatedVarintFails) {
  std::string bytes = "\xff\xff";  // continuation bits with no terminator
  BinaryReader r(bytes);
  EXPECT_TRUE(r.GetVarint32().status().IsCorruption());
}

TEST(SerializeTest, OverlongVarint32Fails) {
  std::string bytes = "\xff\xff\xff\xff\xff\xff";  // > 5 bytes of continuation
  BinaryReader r(bytes);
  EXPECT_FALSE(r.GetVarint32().ok());
}

TEST(SerializeTest, TruncatedStringBodyFails) {
  BinaryWriter w;
  w.PutString("hello world");
  BinaryReader r(w.data().data(), 4);  // header + partial body
  EXPECT_TRUE(r.GetString().status().IsCorruption());
}

TEST(SerializeTest, CorruptListCountRejected) {
  BinaryWriter w;
  w.PutVarint32(1000000);  // claims a million entries, provides none
  BinaryReader r(w.data());
  EXPECT_FALSE(r.GetU32List(false).ok());
}

TEST(SerializeTest, PositionAndRemaining) {
  BinaryWriter w;
  w.PutU32(1);
  w.PutU32(2);
  BinaryReader r(w.data());
  EXPECT_EQ(r.position(), 0u);
  EXPECT_EQ(r.RemainingBytes(), 8u);
  ASSERT_TRUE(r.GetU32().ok());
  EXPECT_EQ(r.position(), 4u);
  EXPECT_EQ(r.RemainingBytes(), 4u);
  EXPECT_FALSE(r.AtEnd());
  ASSERT_TRUE(r.GetU32().ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, RawBytesRoundTrip) {
  BinaryWriter w;
  const char raw[4] = {1, 2, 3, 4};
  w.PutRaw(raw, 4);
  EXPECT_EQ(w.size(), 4u);
  BinaryReader r(w.data());
  EXPECT_EQ(r.GetU8().value(), 1);
}

TEST(SerializeTest, ReleaseMovesBuffer) {
  BinaryWriter w;
  w.PutU32(9);
  std::string data = w.Release();
  EXPECT_EQ(data.size(), 4u);
}

}  // namespace
}  // namespace strr
