// Tests for the R-tree and B+-tree, including parameterized property
// sweeps against brute-force / std::map references.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "index/bplus_tree.h"
#include "index/rtree.h"
#include "util/rng.h"

namespace strr {
namespace {

// --- RTree: basic ------------------------------------------------------------

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_TRUE(tree.Search(Mbr(0, 0, 10, 10)).empty());
  EXPECT_TRUE(tree.Nearest({0, 0}, 3).empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, SingleEntry) {
  RTree tree;
  tree.Insert(Mbr(1, 1, 2, 2), 7);
  EXPECT_EQ(tree.size(), 1u);
  auto hits = tree.Search(Mbr(0, 0, 3, 3));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 7u);
  EXPECT_TRUE(tree.Search(Mbr(5, 5, 6, 6)).empty());
}

TEST(RTreeTest, BulkLoadSmall) {
  std::vector<RTree::Entry> entries;
  for (uint32_t i = 0; i < 10; ++i) {
    entries.push_back({Mbr(i, 0, i + 0.5, 1), i});
  }
  RTree tree(4);
  tree.BulkLoad(entries);
  EXPECT_EQ(tree.size(), 10u);
  EXPECT_TRUE(tree.CheckInvariants());
  auto hits = tree.Search(Mbr(2.2, 0, 4.2, 1));
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<uint32_t>{2, 3, 4}));
}

TEST(RTreeTest, BulkLoadEmptyAndReload) {
  RTree tree;
  tree.BulkLoad({});
  EXPECT_TRUE(tree.empty());
  tree.BulkLoad({{Mbr(0, 0, 1, 1), 1}});
  EXPECT_EQ(tree.size(), 1u);
  tree.BulkLoad({});
  EXPECT_TRUE(tree.empty());
}

TEST(RTreeTest, NearestOrdering) {
  RTree tree;
  tree.Insert(Mbr::FromPoint({0, 0}), 0);
  tree.Insert(Mbr::FromPoint({10, 0}), 1);
  tree.Insert(Mbr::FromPoint({20, 0}), 2);
  auto nearest = tree.Nearest({11, 0}, 2);
  ASSERT_EQ(nearest.size(), 2u);
  EXPECT_EQ(nearest[0], 1u);
  EXPECT_EQ(nearest[1], 2u);
}

TEST(RTreeTest, NearestKLargerThanSize) {
  RTree tree;
  tree.Insert(Mbr::FromPoint({0, 0}), 0);
  EXPECT_EQ(tree.Nearest({5, 5}, 10).size(), 1u);
}

TEST(RTreeTest, SearchVisitEarlyStop) {
  RTree tree;
  for (uint32_t i = 0; i < 20; ++i) tree.Insert(Mbr(i, 0, i + 1, 1), i);
  int visits = 0;
  tree.SearchVisit(Mbr(0, 0, 30, 1), [&](const RTree::Entry&) {
    ++visits;
    return visits < 5;
  });
  EXPECT_EQ(visits, 5);
}

TEST(RTreeTest, HeightGrowsLogarithmically) {
  RTree tree(8);
  for (uint32_t i = 0; i < 1000; ++i) {
    tree.Insert(Mbr::FromPoint({static_cast<double>(i % 37),
                                static_cast<double>(i % 53)}),
                i);
  }
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_LE(tree.Height(), 6);
  EXPECT_GE(tree.Height(), 3);
}

// --- RTree: parameterized property sweep -------------------------------------

struct RTreeParam {
  size_t fanout;
  size_t count;
  bool bulk;
};

class RTreePropertyTest : public ::testing::TestWithParam<RTreeParam> {};

TEST_P(RTreePropertyTest, SearchMatchesBruteForce) {
  const RTreeParam param = GetParam();
  Rng rng(1000 + param.count * 7 + param.fanout);
  std::vector<RTree::Entry> entries;
  for (uint32_t i = 0; i < param.count; ++i) {
    double x = rng.Uniform(0, 1000), y = rng.Uniform(0, 1000);
    entries.push_back(
        {Mbr(x, y, x + rng.Uniform(0, 30), y + rng.Uniform(0, 30)), i});
  }
  RTree tree(param.fanout);
  if (param.bulk) {
    tree.BulkLoad(entries);
  } else {
    for (const auto& e : entries) tree.Insert(e.box, e.value);
  }
  ASSERT_EQ(tree.size(), param.count);
  ASSERT_TRUE(tree.CheckInvariants());

  for (int trial = 0; trial < 20; ++trial) {
    double x = rng.Uniform(-50, 1000), y = rng.Uniform(-50, 1000);
    Mbr query(x, y, x + rng.Uniform(1, 200), y + rng.Uniform(1, 200));
    std::set<uint32_t> expected;
    for (const auto& e : entries) {
      if (e.box.Intersects(query)) expected.insert(e.value);
    }
    auto got_vec = tree.Search(query);
    std::set<uint32_t> got(got_vec.begin(), got_vec.end());
    ASSERT_EQ(got_vec.size(), got.size()) << "duplicates returned";
    EXPECT_EQ(got, expected);
  }
}

TEST_P(RTreePropertyTest, NearestMatchesBruteForce) {
  const RTreeParam param = GetParam();
  Rng rng(2000 + param.count * 3 + param.fanout);
  std::vector<RTree::Entry> entries;
  for (uint32_t i = 0; i < param.count; ++i) {
    double x = rng.Uniform(0, 500), y = rng.Uniform(0, 500);
    entries.push_back({Mbr::FromPoint({x, y}), i});
  }
  RTree tree(param.fanout);
  if (param.bulk) {
    tree.BulkLoad(entries);
  } else {
    for (const auto& e : entries) tree.Insert(e.box, e.value);
  }
  for (int trial = 0; trial < 10; ++trial) {
    XyPoint p{rng.Uniform(0, 500), rng.Uniform(0, 500)};
    auto got = tree.Nearest(p, 1);
    ASSERT_EQ(got.size(), 1u);
    double got_d = entries[got[0]].box.MinDistance(p);
    double best = 1e18;
    for (const auto& e : entries) best = std::min(best, e.box.MinDistance(p));
    EXPECT_NEAR(got_d, best, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RTreePropertyTest,
    ::testing::Values(RTreeParam{4, 10, false}, RTreeParam{4, 200, false},
                      RTreeParam{8, 500, false}, RTreeParam{16, 1000, false},
                      RTreeParam{4, 10, true}, RTreeParam{4, 200, true},
                      RTreeParam{8, 500, true}, RTreeParam{16, 1000, true},
                      RTreeParam{32, 2000, true}),
    [](const ::testing::TestParamInfo<RTreeParam>& info) {
      return (info.param.bulk ? std::string("Bulk") : std::string("Insert")) +
             "F" + std::to_string(info.param.fanout) + "N" +
             std::to_string(info.param.count);
    });

// --- BPlusTree: basic --------------------------------------------------------

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_FALSE(tree.Find(5).has_value());
  EXPECT_FALSE(tree.Floor(5).has_value());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, InsertAndFind) {
  BPlusTree tree(4);
  tree.Insert(10, 100);
  tree.Insert(20, 200);
  tree.Insert(5, 50);
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.Find(10).value(), 100u);
  EXPECT_EQ(tree.Find(5).value(), 50u);
  EXPECT_FALSE(tree.Find(15).has_value());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, DuplicateKeyOverwrites) {
  BPlusTree tree(4);
  tree.Insert(7, 1);
  tree.Insert(7, 2);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.Find(7).value(), 2u);
}

TEST(BPlusTreeTest, FloorSemantics) {
  BPlusTree tree(4);
  for (int64_t k : {0, 300, 600, 900}) {
    tree.Insert(k, static_cast<uint32_t>(k / 300));
  }
  EXPECT_EQ(tree.Floor(0)->second, 0u);
  EXPECT_EQ(tree.Floor(299)->second, 0u);
  EXPECT_EQ(tree.Floor(300)->second, 1u);
  EXPECT_EQ(tree.Floor(899)->second, 2u);
  EXPECT_EQ(tree.Floor(5000)->second, 3u);
  EXPECT_FALSE(tree.Floor(-1).has_value());
}

TEST(BPlusTreeTest, RangeScan) {
  BPlusTree tree(4);
  for (int64_t k = 0; k < 50; k += 5) tree.Insert(k, static_cast<uint32_t>(k));
  std::vector<int64_t> keys;
  tree.Range(12, 33, [&](int64_t k, uint32_t v) {
    keys.push_back(k);
    EXPECT_EQ(v, static_cast<uint32_t>(k));
    return true;
  });
  EXPECT_EQ(keys, (std::vector<int64_t>{15, 20, 25, 30}));
}

TEST(BPlusTreeTest, RangeEarlyStop) {
  BPlusTree tree(4);
  for (int64_t k = 0; k < 100; ++k) tree.Insert(k, 0);
  int count = 0;
  tree.Range(0, 99, [&](int64_t, uint32_t) { return ++count < 7; });
  EXPECT_EQ(count, 7);
}

TEST(BPlusTreeTest, RangeEmptyAndInverted) {
  BPlusTree tree(4);
  tree.Insert(5, 1);
  int count = 0;
  tree.Range(10, 4, [&](int64_t, uint32_t) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 0);
}

TEST(BPlusTreeTest, HeightStaysLogarithmic) {
  BPlusTree tree(8);
  for (int64_t k = 0; k < 10000; ++k) tree.Insert(k, 0);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_LE(tree.Height(), 6);
}

// --- BPlusTree: parameterized property sweep ---------------------------------

struct BTreeParam {
  size_t order;
  size_t count;
  bool ascending;
};

class BPlusTreePropertyTest : public ::testing::TestWithParam<BTreeParam> {};

TEST_P(BPlusTreePropertyTest, MatchesStdMap) {
  const BTreeParam param = GetParam();
  Rng rng(500 + param.order * 13 + param.count);
  BPlusTree tree(param.order);
  std::map<int64_t, uint32_t> reference;
  for (size_t i = 0; i < param.count; ++i) {
    int64_t key = param.ascending
                      ? static_cast<int64_t>(i) * 3
                      : rng.UniformInt(-100000, 100000);
    uint32_t value = static_cast<uint32_t>(rng.UniformInt(0, 1 << 30));
    tree.Insert(key, value);
    reference[key] = value;
  }
  ASSERT_EQ(tree.size(), reference.size());
  ASSERT_TRUE(tree.CheckInvariants());

  // Point lookups.
  for (const auto& [k, v] : reference) {
    auto got = tree.Find(k);
    ASSERT_TRUE(got.has_value()) << "missing key " << k;
    EXPECT_EQ(*got, v);
  }
  // Floor lookups at random probes.
  for (int trial = 0; trial < 50; ++trial) {
    int64_t probe = rng.UniformInt(-120000, 120000);
    auto got = tree.Floor(probe);
    auto it = reference.upper_bound(probe);
    if (it == reference.begin()) {
      EXPECT_FALSE(got.has_value());
    } else {
      --it;
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->first, it->first);
      EXPECT_EQ(got->second, it->second);
    }
  }
  // A full range scan yields the reference in order.
  std::vector<std::pair<int64_t, uint32_t>> scanned;
  tree.Range(std::numeric_limits<int64_t>::min() / 2,
             std::numeric_limits<int64_t>::max() / 2,
             [&](int64_t k, uint32_t v) {
               scanned.emplace_back(k, v);
               return true;
             });
  ASSERT_EQ(scanned.size(), reference.size());
  size_t i = 0;
  for (const auto& [k, v] : reference) {
    EXPECT_EQ(scanned[i].first, k);
    EXPECT_EQ(scanned[i].second, v);
    ++i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BPlusTreePropertyTest,
    ::testing::Values(BTreeParam{4, 10, false}, BTreeParam{4, 500, false},
                      BTreeParam{8, 2000, false}, BTreeParam{32, 5000, false},
                      BTreeParam{4, 500, true}, BTreeParam{16, 3000, true},
                      BTreeParam{64, 8000, false}),
    [](const ::testing::TestParamInfo<BTreeParam>& info) {
      return std::string(info.param.ascending ? "Asc" : "Rand") + "O" +
             std::to_string(info.param.order) + "N" +
             std::to_string(info.param.count);
    });

}  // namespace
}  // namespace strr
