// Tests for the multi-tenant query front door: TenantRegistry config /
// accounting, WfqAdmissionController quota isolation and deficit-round-
// robin dispatch (deterministic grant-order and weighted completion-ratio
// properties, no-starvation), executor-level tenancy (typed per-tenant
// shedding, tenant-scoped vs shared caching, off-knob bit-identity with
// the PR-4 front door), per-tenant front_door_stats() aggregation under
// concurrent mixed-tenant load, and a TSan hammer mixing tenants with
// live ingestion.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/query_executor.h"
#include "core/reachability_engine.h"
#include "core/tenant_registry.h"
#include "core/wfq_admission.h"
#include "query/query_plan.h"
#include "tests/test_util.h"

namespace strr {
namespace {

using testing_util::GetSharedStack;
using testing_util::MakeTempDir;

// --- TenantRegistry units ----------------------------------------------------

void WriteConfigFile(const std::string& path, const std::string& body) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << body;
  }
  // Rename so the watcher never reads a half-written file.
  std::filesystem::rename(tmp, path);
}

TEST(TenantRegistryTest, UnknownTenantsServeUnderDefaults) {
  TenantRegistry registry({.weight = 3, .max_inflight = 7, .max_queued = 9});
  TenantConfig config = registry.config(42);
  EXPECT_EQ(config.weight, 3u);
  EXPECT_EQ(config.max_inflight, 7u);
  EXPECT_EQ(config.max_queued, 9u);
  // Reading a config does not create per-tenant state.
  EXPECT_TRUE(registry.Snapshot().empty());
}

TEST(TenantRegistryTest, ConfigureOverridesAndCountersAccumulate) {
  TenantRegistry registry;
  registry.Configure(2, {.weight = 0, .max_inflight = 4, .max_queued = 1});
  EXPECT_EQ(registry.config(2).weight, 1u);  // weight clamped to >= 1
  EXPECT_EQ(registry.config(2).max_inflight, 4u);

  registry.RecordAdmission(2);
  registry.RecordAdmission(2);
  registry.RecordRelease(2);
  registry.RecordShed(2);
  registry.RecordCacheHit(2);
  registry.RecordCacheMiss(2);
  StorageStats io;
  io.disk_page_reads = 5;
  io.cache_hits = 11;
  registry.RecordCompletion(2, io);

  TenantCounters counters = registry.counters(2);
  EXPECT_EQ(counters.tenant, 2u);
  EXPECT_EQ(counters.admitted, 2u);
  EXPECT_EQ(counters.shed, 1u);
  EXPECT_EQ(counters.completed, 1u);
  EXPECT_EQ(counters.cache_hits, 1u);
  EXPECT_EQ(counters.cache_misses, 1u);
  EXPECT_EQ(counters.inflight, 1u);
  EXPECT_EQ(counters.io.disk_page_reads, 5u);
  EXPECT_EQ(counters.io.cache_hits, 11u);

  registry.RecordAdmission(9);
  std::vector<TenantCounters> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].tenant, 2u);  // sorted by tenant id
  EXPECT_EQ(snapshot[1].tenant, 9u);
}

// --- WfqAdmissionController units --------------------------------------------

TEST(TenantRegistryTest, LoadFromFileParsesAndRejectsAtomically) {
  std::string dir = MakeTempDir("tenant_cfg");
  std::string path = dir + "/tenants.cfg";
  WriteConfigFile(path,
                  "# tenant weight max_inflight max_queued\n"
                  "1 4 16 8\n"
                  "\n"
                  "2 1 0 64\n");
  TenantRegistry registry;
  STRR_ASSERT_OK(registry.LoadFromFile(path));
  EXPECT_EQ(registry.config(1).weight, 4u);
  EXPECT_EQ(registry.config(1).max_inflight, 16u);
  EXPECT_EQ(registry.config(1).max_queued, 8u);
  EXPECT_EQ(registry.config(2).max_inflight, 0u);
  EXPECT_EQ(registry.reloads(), 1u);

  // A malformed line rejects the whole load and leaves configs untouched.
  WriteConfigFile(path, "1 9 9 9\nnot a config line\n");
  EXPECT_FALSE(registry.LoadFromFile(path).ok());
  EXPECT_EQ(registry.config(1).weight, 4u) << "partial load applied";
  EXPECT_EQ(registry.reloads(), 1u);

  EXPECT_FALSE(registry.LoadFromFile(dir + "/absent.cfg").ok());
}

TEST(TenantRegistryTest, FileWatchReloadsUnderConcurrentTraffic) {
  std::string dir = MakeTempDir("tenant_watch");
  std::string path = dir + "/tenants.cfg";
  WriteConfigFile(path, "7 1 2 64\n");

  TenantRegistry registry;
  STRR_ASSERT_OK(registry.StartFileWatch(path, /*poll_ms=*/5));
  ASSERT_EQ(registry.reloads(), 1u) << "initial load is synchronous";
  EXPECT_EQ(registry.config(7).max_inflight, 2u);

  // Claim traffic hammers the registry while the config is rewritten
  // underneath it — the reload path must never wedge or corrupt counters.
  std::atomic<bool> stop{false};
  std::vector<std::thread> traffic;
  for (int t = 0; t < 4; ++t) {
    traffic.emplace_back([&] {
      while (!stop.load()) {
        size_t quota = registry.config(7).max_inflight;
        if (registry.TryClaimInflight(7, quota)) {
          std::this_thread::yield();
          registry.ReleaseClaim(7);
        }
      }
    });
  }

  // Rewrite until the watcher observes a new mtime (coarse-granularity
  // filesystems may need several attempts), then wait for the reload.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (registry.reloads() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    WriteConfigFile(path, "7 3 9 64\n");
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true);
  for (auto& t : traffic) t.join();

  ASSERT_GE(registry.reloads(), 2u) << "watcher never picked up the rewrite";
  EXPECT_EQ(registry.config(7).weight, 3u);
  EXPECT_EQ(registry.config(7).max_inflight, 9u);
  EXPECT_EQ(registry.counters(7).inflight, 0u);
  registry.StopFileWatch();
  uint64_t settled = registry.reloads();
  WriteConfigFile(path, "7 5 5 5\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(registry.reloads(), settled) << "stopped watcher kept reloading";
}

TEST(TenantRegistryTest, EngineWiresConfigFileIntoRegistry) {
  auto& stack = GetSharedStack();
  std::string dir = MakeTempDir("tenant_engine_cfg");
  std::string path = dir + "/tenants.cfg";
  WriteConfigFile(path, "3 2 8 16\n");

  EngineOptions opt;
  opt.work_dir = MakeTempDir("tenant_engine");
  opt.delta_t_seconds = 300;
  opt.tenant_config_path = path;
  // The config file requires a registry to load into.
  EXPECT_TRUE(ReachabilityEngine::Build(stack.dataset.network,
                                        *stack.dataset.store, opt)
                  .status()
                  .IsInvalidArgument());

  opt.tenant_fairness = true;
  auto engine = ReachabilityEngine::Build(stack.dataset.network,
                                          *stack.dataset.store, opt);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_NE((*engine)->tenant_registry(), nullptr);
  EXPECT_EQ((*engine)->tenant_registry()->config(3).weight, 2u);
  EXPECT_EQ((*engine)->tenant_registry()->config(3).max_inflight, 8u);
  EXPECT_GE((*engine)->tenant_registry()->reloads(), 1u);
}

TEST(WfqAdmissionTest, DisabledControllerAdmitsEverything) {
  TenantRegistry registry;
  WfqAdmissionController wfq({.max_inflight = 0}, &registry);
  EXPECT_FALSE(wfq.enabled());
  for (TenantId t = 0; t < 5; ++t) {
    EXPECT_TRUE(wfq.Admit(t).ok());
    EXPECT_TRUE(wfq.TryAdmitBatch(t).ok());
  }
  EXPECT_EQ(wfq.stats().shed, 0u);
}

TEST(WfqAdmissionTest, QuotaExceededShedsTypedAndIsolated) {
  TenantRegistry registry;
  registry.Configure(1, {.weight = 1, .max_inflight = 2, .max_queued = 0});
  WfqAdmissionController wfq({.max_inflight = 8, .batch_share = 1.0},
                             &registry);

  EXPECT_TRUE(wfq.Admit(1).ok());
  EXPECT_TRUE(wfq.Admit(1).ok());
  Status over_quota = wfq.Admit(1);  // quota 2 reached, queue bound 0
  ASSERT_TRUE(over_quota.IsResourceExhausted()) << over_quota.ToString();
  EXPECT_NE(over_quota.message().find("tenant 1"), std::string::npos)
      << over_quota.ToString();

  // Other tenants are untouched by tenant 1's quota: the global pool
  // still has 6 free tickets.
  EXPECT_TRUE(wfq.Admit(2).ok());
  EXPECT_TRUE(wfq.Admit(3).ok());
  EXPECT_EQ(wfq.inflight(), 4u);
  EXPECT_EQ(wfq.inflight(1), 2u);

  EXPECT_EQ(registry.counters(1).shed, 1u);
  EXPECT_EQ(registry.counters(2).shed, 0u);
  EXPECT_EQ(registry.counters(1).inflight, 2u);

  wfq.Release(1);
  wfq.Release(1);
  wfq.Release(2);
  wfq.Release(3);
  EXPECT_EQ(wfq.inflight(), 0u);
  EXPECT_EQ(registry.counters(1).inflight, 0u);
}

TEST(WfqAdmissionTest, BatchFairShareComposesPerTenant) {
  TenantRegistry registry;
  registry.Configure(1, {.weight = 1, .max_inflight = 4, .max_queued = 0});
  WfqAdmissionController wfq({.max_inflight = 8, .batch_share = 0.5},
                             &registry);

  // Tenant 1: quota 4, so its batches hold at most 2 tickets.
  EXPECT_TRUE(wfq.TryAdmitBatch(1).ok());
  EXPECT_TRUE(wfq.TryAdmitBatch(1).ok());
  Status tenant_cap = wfq.TryAdmitBatch(1);
  ASSERT_TRUE(tenant_cap.IsResourceExhausted()) << tenant_cap.ToString();
  EXPECT_NE(tenant_cap.message().find("tenant 1"), std::string::npos);
  // Tenant 1 singles may still use the other half of its quota.
  EXPECT_TRUE(wfq.Admit(1).ok());
  EXPECT_TRUE(wfq.Admit(1).ok());

  // Global batch cap is 4 (0.5 * 8): tenant 2's batches get the rest.
  EXPECT_TRUE(wfq.TryAdmitBatch(2).ok());
  EXPECT_TRUE(wfq.TryAdmitBatch(2).ok());
  Status global_cap = wfq.TryAdmitBatch(3);
  ASSERT_TRUE(global_cap.IsResourceExhausted()) << global_cap.ToString();

  wfq.ReleaseBatch(1);
  wfq.ReleaseBatch(1);
  wfq.Release(1);
  wfq.Release(1);
  wfq.ReleaseBatch(2);
  wfq.ReleaseBatch(2);
  EXPECT_EQ(wfq.inflight(), 0u);
}

TEST(WfqAdmissionTest, DeficitRoundRobinGrantOrderFollowsWeights) {
  // One global ticket; tenant 10 weighs 2, tenant 20 weighs 1. With six
  // 10-waiters and three 20-waiters queued (in that ring order), the
  // grant sequence must be the DRR pattern 10 10 20 | 10 10 20 | 10 10 20
  // — each cycle credits a tenant `weight` grants. The single ticket
  // serializes grant -> record -> release, so the recorded order IS the
  // dispatch order.
  TenantRegistry registry;
  registry.Configure(10, {.weight = 2, .max_inflight = 0, .max_queued = 64});
  registry.Configure(20, {.weight = 1, .max_inflight = 0, .max_queued = 64});
  WfqAdmissionController wfq({.max_inflight = 1}, &registry);

  ASSERT_TRUE(wfq.Admit(99).ok());  // occupy the only ticket

  std::mutex order_mu;
  std::vector<TenantId> order;
  std::vector<std::thread> waiters;
  auto spawn_waiter = [&](TenantId tenant) {
    size_t queued_before = wfq.queued();
    waiters.emplace_back([&wfq, &order_mu, &order, tenant] {
      Status s = wfq.Admit(tenant);
      ASSERT_TRUE(s.ok()) << s.ToString();
      {
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(tenant);
      }
      wfq.Release(tenant);
    });
    // Enqueue deterministically: wait until this waiter is parked so the
    // ring order (and FIFO position) is exactly the spawn order.
    while (wfq.queued() == queued_before) std::this_thread::yield();
  };
  for (int i = 0; i < 6; ++i) spawn_waiter(10);
  for (int i = 0; i < 3; ++i) spawn_waiter(20);

  wfq.Release(99);  // kick off the cascade
  for (auto& t : waiters) t.join();

  std::vector<TenantId> expected = {10, 10, 20, 10, 10, 20, 10, 10, 20};
  EXPECT_EQ(order, expected);
  EXPECT_EQ(wfq.inflight(), 0u);
  EXPECT_EQ(wfq.queued(), 0u);
}

TEST(WfqAdmissionTest, CompletionRatioTracksWeightsUnderSaturation) {
  // Closed-loop saturation, weight 2 vs 1: the observed completion ratio
  // must match the weights within 20%. Each client holds its ticket
  // briefly so real queues form (on a single-core host a no-work loop
  // would let the first-scheduled tenant finish before the other even
  // starts), and counting only begins once BOTH tenants have waiters —
  // the fairness property is about the saturated regime, not the
  // scheduling of thread start-up.
  TenantRegistry registry;
  registry.Configure(1, {.weight = 2, .max_inflight = 0, .max_queued = 64});
  registry.Configure(2, {.weight = 1, .max_inflight = 0, .max_queued = 64});
  WfqAdmissionController wfq({.max_inflight = 2}, &registry);

  constexpr int kTargetTotal = 300;
  std::atomic<int> total{0};
  std::atomic<int> per_tenant[3] = {{0}, {0}, {0}};
  std::atomic<bool> counting{false};
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (TenantId tenant : {1u, 2u}) {
    for (int i = 0; i < 4; ++i) {
      clients.emplace_back([&, tenant] {
        while (!stop.load()) {
          Status s = wfq.Admit(tenant);
          ASSERT_TRUE(s.ok()) << s.ToString();
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          if (counting.load()) {
            per_tenant[tenant].fetch_add(1);
            if (total.fetch_add(1) + 1 >= kTargetTotal) stop.store(true);
          }
          wfq.Release(tenant);
        }
      });
    }
  }
  while (wfq.queued(1) == 0 || wfq.queued(2) == 0) std::this_thread::yield();
  counting.store(true);
  for (auto& t : clients) t.join();

  double heavy = per_tenant[1].load();
  double light = per_tenant[2].load();
  ASSERT_GT(light, 0.0);
  double ratio = heavy / light;
  EXPECT_GE(ratio, 2.0 * 0.8) << "heavy " << heavy << " light " << light;
  EXPECT_LE(ratio, 2.0 * 1.2) << "heavy " << heavy << " light " << light;
  EXPECT_EQ(wfq.inflight(), 0u);
}

TEST(WfqAdmissionTest, HeavyWeightCannotStarveLightTenants) {
  TenantRegistry registry;
  registry.Configure(1, {.weight = 16, .max_inflight = 0, .max_queued = 64});
  registry.Configure(2, {.weight = 1, .max_inflight = 0, .max_queued = 64});
  registry.Configure(3, {.weight = 1, .max_inflight = 0, .max_queued = 64});
  WfqAdmissionController wfq({.max_inflight = 1}, &registry);

  constexpr int kTargetTotal = 200;
  std::atomic<int> total{0};
  std::atomic<int> per_tenant[4] = {{0}, {0}, {0}, {0}};
  std::atomic<bool> counting{false};
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (TenantId tenant : {1u, 2u, 3u}) {
    for (int i = 0; i < 3; ++i) {
      clients.emplace_back([&, tenant] {
        while (!stop.load()) {
          Status s = wfq.Admit(tenant);
          ASSERT_TRUE(s.ok()) << s.ToString();
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          if (counting.load()) {
            per_tenant[tenant].fetch_add(1);
            if (total.fetch_add(1) + 1 >= kTargetTotal) stop.store(true);
          }
          wfq.Release(tenant);
        }
      });
    }
  }
  while (wfq.queued(1) == 0 || wfq.queued(2) == 0 || wfq.queued(3) == 0) {
    std::this_thread::yield();
  }
  counting.store(true);
  for (auto& t : clients) t.join();

  // DRR visits every tenant with waiters each cycle: the weight-16
  // tenant dominates but can never zero the others out.
  EXPECT_GT(per_tenant[1].load(), per_tenant[2].load());
  EXPECT_GT(per_tenant[2].load(), 0);
  EXPECT_GT(per_tenant[3].load(), 0);
}

TEST(WfqCostBasedTest, CostEwmaTracksReportedReleaseCosts) {
  TenantRegistry registry;
  WfqAdmissionController wfq({.max_inflight = 4, .cost_based = true},
                             &registry);
  EXPECT_EQ(wfq.AvgCostUs(1), 0.0);
  ASSERT_TRUE(wfq.Admit(1).ok());
  wfq.Release(1, 1000.0);
  EXPECT_DOUBLE_EQ(wfq.AvgCostUs(1), 1000.0);  // first sample seeds
  ASSERT_TRUE(wfq.Admit(1).ok());
  wfq.Release(1, 2000.0);
  EXPECT_DOUBLE_EQ(wfq.AvgCostUs(1), 0.75 * 1000.0 + 0.25 * 2000.0);
  // Unmeasured releases leave the estimate untouched.
  ASSERT_TRUE(wfq.Admit(1).ok());
  wfq.Release(1);
  EXPECT_DOUBLE_EQ(wfq.AvgCostUs(1), 1250.0);
}

TEST(WfqCostBasedTest, GrantRatioTracksInverseCostUnderSaturation) {
  // Equal weights, 4x cost skew: under cost-based DRR each visit's credit
  // buys the cheap tenant ~4x the grants of the expensive one, so the
  // saturated grant ratio approaches the inverse cost ratio — the
  // CPU-time shares equalize. (Count-based DRR would grant them 1:1 and
  // let the expensive tenant hog 4x the CPU.)
  TenantRegistry registry;
  registry.Configure(1, {.weight = 1, .max_inflight = 0, .max_queued = 64});
  registry.Configure(2, {.weight = 1, .max_inflight = 0, .max_queued = 64});
  WfqAdmissionController wfq(
      {.max_inflight = 2, .cost_based = true, .cost_quantum_us = 4000.0},
      &registry);
  constexpr double kCheapUs = 1000.0, kExpensiveUs = 4000.0;

  constexpr int kTargetTotal = 300;
  std::atomic<int> total{0};
  std::atomic<int> per_tenant[3] = {{0}, {0}, {0}};
  std::atomic<bool> counting{false};
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (TenantId tenant : {1u, 2u}) {
    for (int i = 0; i < 4; ++i) {
      clients.emplace_back([&, tenant] {
        const double cost = tenant == 1 ? kCheapUs : kExpensiveUs;
        while (!stop.load()) {
          Status s = wfq.Admit(tenant);
          ASSERT_TRUE(s.ok()) << s.ToString();
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          if (counting.load()) {
            per_tenant[tenant].fetch_add(1);
            if (total.fetch_add(1) + 1 >= kTargetTotal) stop.store(true);
          }
          wfq.Release(tenant, cost);
        }
      });
    }
  }
  while (wfq.queued(1) == 0 || wfq.queued(2) == 0) std::this_thread::yield();
  counting.store(true);
  for (auto& t : clients) t.join();

  double cheap = per_tenant[1].load();
  double expensive = per_tenant[2].load();
  ASSERT_GT(expensive, 0.0);
  double ratio = cheap / expensive;
  const double want = kExpensiveUs / kCheapUs;
  EXPECT_GE(ratio, want * 0.7) << "cheap " << cheap << " expensive "
                               << expensive;
  EXPECT_LE(ratio, want * 1.3) << "cheap " << cheap << " expensive "
                               << expensive;
  EXPECT_EQ(wfq.inflight(), 0u);
  EXPECT_DOUBLE_EQ(wfq.AvgCostUs(1), kCheapUs);
  EXPECT_DOUBLE_EQ(wfq.AvgCostUs(2), kExpensiveUs);
}

TEST(WfqCostBasedTest, ExpensiveTenantStillDrainsAcrossRingCycles) {
  // A tenant whose per-query charge exceeds one visit's credit must
  // accumulate credit across cycles and drain (classic DRR backlog), not
  // starve. Quantum 1000 vs measured cost 10000: ~10 visits per grant.
  TenantRegistry registry;
  registry.Configure(1, {.weight = 1, .max_inflight = 0, .max_queued = 64});
  registry.Configure(2, {.weight = 1, .max_inflight = 0, .max_queued = 64});
  WfqAdmissionController wfq(
      {.max_inflight = 1, .cost_based = true, .cost_quantum_us = 1000.0},
      &registry);
  // Seed the cost estimates without contention.
  ASSERT_TRUE(wfq.Admit(1).ok());
  wfq.Release(1, 500.0);
  ASSERT_TRUE(wfq.Admit(2).ok());
  wfq.Release(2, 10000.0);

  constexpr int kTargetTotal = 120;
  std::atomic<int> total{0};
  std::atomic<int> per_tenant[3] = {{0}, {0}, {0}};
  std::atomic<bool> counting{false};
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (TenantId tenant : {1u, 2u}) {
    for (int i = 0; i < 3; ++i) {
      clients.emplace_back([&, tenant] {
        const double cost = tenant == 1 ? 500.0 : 10000.0;
        while (!stop.load()) {
          Status s = wfq.Admit(tenant);
          ASSERT_TRUE(s.ok()) << s.ToString();
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          if (counting.load()) {
            per_tenant[tenant].fetch_add(1);
            if (total.fetch_add(1) + 1 >= kTargetTotal) stop.store(true);
          }
          wfq.Release(tenant, cost);
        }
      });
    }
  }
  // Only count the saturated regime: both tenants must have waiters, or
  // thread start-up order (not the scheduler) decides who drains first.
  while (wfq.queued(1) == 0 || wfq.queued(2) == 0) std::this_thread::yield();
  counting.store(true);
  for (auto& t : clients) t.join();
  EXPECT_GT(per_tenant[1].load(), 0);
  EXPECT_GT(per_tenant[2].load(), 0) << "expensive tenant starved";
}

// --- Executor-level tenancy --------------------------------------------------

TEST(TenantFairnessExecutorTest, WeightedThroughputUnderSaturation) {
  auto& stack = GetSharedStack();
  auto plan = stack.engine->planner().PlanSQuery(
      {stack.dataset.center, HMS(11), 600, 0.2}, QueryStrategy::kIndexed,
      /*tenant=*/1);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  QueryPlan heavy_plan = *plan;  // tenant 1, weight 2
  QueryPlan light_plan = *plan;
  light_plan.tenant = 2;

  QueryExecutorOptions opt;
  opt.num_threads = 1;
  opt.max_inflight = 2;
  opt.tenant_fairness = true;
  auto executor = stack.engine->MakeExecutor(opt);
  ASSERT_NE(executor->wfq_admission(), nullptr);
  TenantRegistry* registry = executor->tenant_registry();
  ASSERT_NE(registry, nullptr);
  registry->Configure(1, {.weight = 2, .max_inflight = 0, .max_queued = 64});
  registry->Configure(2, {.weight = 1, .max_inflight = 0, .max_queued = 64});

  constexpr int kTargetTotal = 90;
  std::atomic<int> total{0};
  std::atomic<int> per_tenant[3] = {{0}, {0}, {0}};
  std::atomic<bool> counting{false};
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  // Enough clients per tenant that both admission queues stay non-empty
  // for the whole counting window (a drained queue forfeits DRR turns,
  // which is correct behavior but not the saturated regime under test).
  for (const QueryPlan* p : {&heavy_plan, &light_plan}) {
    for (int i = 0; i < 6; ++i) {
      clients.emplace_back([&, p] {
        while (!stop.load()) {
          auto result = executor->Execute(*p);
          ASSERT_TRUE(result.ok()) << result.status().ToString();
          if (counting.load()) {
            per_tenant[p->tenant].fetch_add(1);
            if (total.fetch_add(1) + 1 >= kTargetTotal) stop.store(true);
          }
        }
      });
    }
  }
  // Count only in the saturated regime: fairness is a property of how
  // queued demand drains, not of which client thread got scheduled first.
  WfqAdmissionController* wfq = executor->wfq_admission();
  while (wfq->queued(1) == 0 || wfq->queued(2) == 0) {
    std::this_thread::yield();
  }
  counting.store(true);
  for (auto& t : clients) t.join();

  double heavy = per_tenant[1].load();
  double light = per_tenant[2].load();
  ASSERT_GT(light, 0.0);
  double ratio = heavy / light;
  EXPECT_GE(ratio, 2.0 * 0.8) << "heavy " << heavy << " light " << light;
  EXPECT_LE(ratio, 2.0 * 1.2) << "heavy " << heavy << " light " << light;

  // Registry completions cover at least the counted window (they also
  // include the pre-saturation warm-up queries).
  EXPECT_GE(registry->counters(1).completed,
            static_cast<uint64_t>(per_tenant[1].load()));
  EXPECT_GE(registry->counters(2).completed,
            static_cast<uint64_t>(per_tenant[2].load()));
  EXPECT_EQ(registry->counters(1).inflight, 0u);
  EXPECT_EQ(registry->counters(2).inflight, 0u);
}

TEST(TenantFairnessExecutorTest, QuotaShedsTypedWhileOtherTenantIsServed) {
  auto& stack = GetSharedStack();
  auto plan = stack.engine->planner().PlanSQuery(
      {stack.dataset.center, HMS(10), 600, 0.2}, QueryStrategy::kIndexed,
      /*tenant=*/7);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto reference = stack.engine->executor().Execute(*plan);
  ASSERT_TRUE(reference.ok());

  QueryExecutorOptions opt;
  opt.num_threads = 4;
  opt.max_inflight = 8;
  opt.batch_share = 1.0;
  opt.tenant_fairness = true;
  auto executor = stack.engine->MakeExecutor(opt);
  TenantRegistry* registry = executor->tenant_registry();
  registry->Configure(7, {.weight = 1, .max_inflight = 1, .max_queued = 0});

  // Tenant 7 floods a 24-plan batch against a quota of one; tenant 8
  // keeps issuing singles throughout and must never shed.
  std::vector<QueryPlan> flood(24, *plan);
  QueryPlan other = *plan;
  other.tenant = 8;
  std::atomic<int> other_failures{0};
  std::thread other_client([&] {
    for (int i = 0; i < 6; ++i) {
      auto r = executor->Execute(other);
      if (!r.ok()) other_failures.fetch_add(1);
    }
  });
  auto results = executor->ExecuteBatch(flood);
  other_client.join();

  size_t ok = 0, shed = 0;
  for (const auto& r : results) {
    if (r.ok()) {
      ++ok;
      EXPECT_EQ(r->segments, reference->segments);
    } else {
      ++shed;
      ASSERT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
      EXPECT_NE(r.status().message().find("tenant 7"), std::string::npos)
          << r.status().ToString();
    }
  }
  EXPECT_EQ(ok + shed, flood.size());
  EXPECT_GE(ok, 1u);
  EXPECT_GE(shed, 1u) << "quota of 1 never shed a 24-plan flood";
  EXPECT_EQ(other_failures.load(), 0)
      << "tenant 8 was shed by tenant 7's quota";
  EXPECT_EQ(registry->counters(7).shed, shed);
  EXPECT_EQ(registry->counters(8).shed, 0u);
  EXPECT_EQ(executor->wfq_admission()->inflight(), 0u);
}

TEST(TenantFairnessExecutorTest, ExecutorMaxQueuedCapsDefaultTenantBound) {
  // Regression: {max_inflight, max_queued} must keep meaning what it
  // means on the plain admission path — the executor-level queue bound
  // caps the default per-tenant waiting bound in the owned registry.
  auto& stack = GetSharedStack();
  QueryExecutorOptions opt;
  opt.num_threads = 1;
  opt.max_inflight = 2;
  opt.max_queued = 3;
  opt.tenant_fairness = true;
  auto executor = stack.engine->MakeExecutor(opt);
  EXPECT_EQ(executor->tenant_registry()->config(42).max_queued, 3u);
  // An explicit Configure may still exceed the executor default.
  executor->tenant_registry()->Configure(
      7, {.weight = 1, .max_inflight = 0, .max_queued = 50});
  EXPECT_EQ(executor->tenant_registry()->config(7).max_queued, 50u);
}

TEST(TenantFairnessExecutorTest, TenantScopedCacheIsolatesAndKnobShares) {
  auto& stack = GetSharedStack();
  auto plan = stack.engine->planner().PlanSQuery(
      {stack.dataset.center, HMS(11), 600, 0.2}, QueryStrategy::kIndexed,
      /*tenant=*/1);
  ASSERT_TRUE(plan.ok());
  QueryPlan t1 = *plan;
  QueryPlan t2 = *plan;
  t2.tenant = 2;

  {
    // Default: tenant-scoped entries — tenant 2 cannot hit tenant 1's.
    QueryExecutorOptions opt;
    opt.num_threads = 1;
    opt.result_cache_entries = 64;
    opt.tenant_fairness = true;
    auto executor = stack.engine->MakeExecutor(opt);
    ASSERT_TRUE(executor->Execute(t1).ok());
    auto second = executor->Execute(t2);
    ASSERT_TRUE(second.ok());
    EXPECT_FALSE(second->stats.cache_hit);
    auto repeat = executor->Execute(t2);
    ASSERT_TRUE(repeat.ok());
    EXPECT_TRUE(repeat->stats.cache_hit);
    QueryExecutor::FrontDoorStats stats = executor->front_door_stats();
    EXPECT_EQ(stats.cache_hits, 1u);
    EXPECT_EQ(stats.cache_misses, 2u);
    TenantRegistry* registry = executor->tenant_registry();
    EXPECT_EQ(registry->counters(1).cache_misses, 1u);
    EXPECT_EQ(registry->counters(2).cache_hits, 1u);
    EXPECT_EQ(registry->counters(2).cache_misses, 1u);
  }
  {
    // Knob on: one shared key space — tenant 2 hits tenant 1's entry.
    QueryExecutorOptions opt;
    opt.num_threads = 1;
    opt.result_cache_entries = 64;
    opt.tenant_fairness = true;
    opt.tenant_shared_cache = true;
    auto executor = stack.engine->MakeExecutor(opt);
    ASSERT_TRUE(executor->Execute(t1).ok());
    auto second = executor->Execute(t2);
    ASSERT_TRUE(second.ok());
    EXPECT_TRUE(second->stats.cache_hit);
    EXPECT_EQ(executor->tenant_registry()->counters(2).cache_hits, 1u);
  }
}

TEST(TenantFairnessExecutorTest, TenancyOffMatchesPlainFrontDoorExactly) {
  // Regression for the acceptance criterion "with tenancy knobs off,
  // front-door behavior is bit-identical to PR-4": same workload through
  // a plain executor and a tenant-aware one (all plans on the default
  // tenant) must produce identical regions, identical cache counters and
  // identical admission counters; and the plain executor must not even
  // construct the tenancy machinery.
  auto& stack = GetSharedStack();
  const QueryPlanner& planner = stack.engine->planner();
  std::vector<QueryPlan> plans;
  for (int i = 0; i < 6; ++i) {
    auto plan = planner.PlanSQuery(
        {stack.dataset.center, HMS(9 + i % 3), 600 + 120 * (i % 2), 0.2});
    ASSERT_TRUE(plan.ok());
    plans.push_back(*plan);
    plans.push_back(*plan);  // repeats exercise the cache path
  }

  QueryExecutorOptions plain_opt;
  plain_opt.num_threads = 1;
  plain_opt.result_cache_entries = 64;
  plain_opt.max_inflight = 4;
  auto plain = stack.engine->MakeExecutor(plain_opt);
  EXPECT_EQ(plain->wfq_admission(), nullptr);
  EXPECT_EQ(plain->tenant_registry(), nullptr);
  EXPECT_TRUE(plain->front_door_stats().tenants.empty());

  QueryExecutorOptions tenant_opt = plain_opt;
  tenant_opt.tenant_fairness = true;
  auto tenanted = stack.engine->MakeExecutor(tenant_opt);
  ASSERT_NE(tenanted->wfq_admission(), nullptr);

  for (const QueryPlan& plan : plans) {
    auto a = plain->Execute(plan);
    auto b = tenanted->Execute(plan);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->segments, b->segments);
    EXPECT_EQ(a->stats.cache_hit, b->stats.cache_hit);
  }
  QueryExecutor::FrontDoorStats plain_stats = plain->front_door_stats();
  QueryExecutor::FrontDoorStats tenant_stats = tenanted->front_door_stats();
  EXPECT_EQ(plain_stats.cache_hits, tenant_stats.cache_hits);
  EXPECT_EQ(plain_stats.cache_misses, tenant_stats.cache_misses);
  EXPECT_EQ(plain_stats.admitted, tenant_stats.admitted);
  EXPECT_EQ(plain_stats.shed, tenant_stats.shed);
  // The tenant-aware stats carry exactly one tenant: the default one.
  ASSERT_EQ(tenant_stats.tenants.size(), 1u);
  EXPECT_EQ(tenant_stats.tenants[0].tenant, kDefaultTenant);
}

// --- front_door_stats() aggregation under concurrent mixed-tenant load -------

TEST(TenantFairnessExecutorTest, StatsAggregateAcrossTenantsUnderLoad) {
  auto& stack = GetSharedStack();
  const QueryPlanner& planner = stack.engine->planner();
  Mbr box = stack.engine->network().BoundingBox();

  // One distinct plan per tenant (different locations / windows so the
  // I/O footprints differ) — each tenant's client repeats its own plan,
  // so hits, misses, completions and io all attribute cleanly.
  std::vector<QueryPlan> plans;
  for (TenantId tenant : {1u, 2u, 3u}) {
    double f = 0.35 + 0.1 * tenant;
    auto plan = planner.PlanSQuery(
        {{box.min_x() + box.Width() * f, box.min_y() + box.Height() * f},
         HMS(9 + tenant),
         600,
         0.2},
        QueryStrategy::kIndexed, tenant);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    plans.push_back(*plan);
  }

  QueryExecutorOptions opt;
  opt.num_threads = 2;
  opt.result_cache_entries = 64;
  opt.max_inflight = 4;
  opt.tenant_fairness = true;
  auto executor = stack.engine->MakeExecutor(opt);
  TenantRegistry* registry = executor->tenant_registry();

  constexpr int kRoundsPerClient = 8;
  // Per-tenant sums of attributed io over *executed* results (cache hits
  // replay the original execution's stats and are not re-attributed).
  std::mutex io_mu;
  StorageStats executed_io[4];
  uint64_t executed_count[4] = {0, 0, 0, 0};
  std::vector<std::thread> clients;
  for (size_t p = 0; p < plans.size(); ++p) {
    for (int c = 0; c < 2; ++c) {
      clients.emplace_back([&, p] {
        const QueryPlan& plan = plans[p];
        for (int round = 0; round < kRoundsPerClient; ++round) {
          auto result = executor->Execute(plan);
          ASSERT_TRUE(result.ok()) << result.status().ToString();
          if (!result->stats.cache_hit) {
            std::lock_guard<std::mutex> lock(io_mu);
            executed_io[plan.tenant] += result->stats.io;
            ++executed_count[plan.tenant];
          }
        }
      });
    }
  }
  for (auto& t : clients) t.join();

  QueryExecutor::FrontDoorStats stats = executor->front_door_stats();
  ASSERT_EQ(stats.tenants.size(), 3u);
  uint64_t hit_sum = 0, miss_sum = 0, admitted_sum = 0, shed_sum = 0;
  for (const TenantCounters& t : stats.tenants) {
    hit_sum += t.cache_hits;
    miss_sum += t.cache_misses;
    admitted_sum += t.admitted;
    shed_sum += t.shed;
    EXPECT_EQ(t.inflight, 0u);
    // ScopedIoCounters attribution is exact and disjoint per tenant: the
    // registry's io slice equals the sum of this tenant's executed
    // results, no matter how the tenants interleaved.
    EXPECT_EQ(t.completed, executed_count[t.tenant]) << "tenant " << t.tenant;
    EXPECT_EQ(t.io.disk_page_reads, executed_io[t.tenant].disk_page_reads)
        << "tenant " << t.tenant;
    EXPECT_EQ(t.io.cache_hits, executed_io[t.tenant].cache_hits)
        << "tenant " << t.tenant;
    EXPECT_EQ(t.io.cache_misses, executed_io[t.tenant].cache_misses)
        << "tenant " << t.tenant;
  }
  // Per-tenant counters sum to the globals.
  EXPECT_EQ(hit_sum, stats.cache_hits);
  EXPECT_EQ(miss_sum, stats.cache_misses);
  EXPECT_EQ(admitted_sum, stats.admitted);
  EXPECT_EQ(shed_sum, stats.shed);
  uint64_t served = hit_sum;
  for (int t = 1; t <= 3; ++t) served += executed_count[t];
  EXPECT_EQ(served, static_cast<uint64_t>(3 * 2 * kRoundsPerClient));
}

// --- Live-ingestion hammer ---------------------------------------------------

TEST(TenantFairnessLiveTest, MixedTenantHammerWithLiveIngestion) {
  // Three tenants with skewed weights query through a tenant-aware,
  // cached, admission-gated front door while an observation stream
  // publishes snapshot refreshes. Correctness bar: nothing fails (the
  // closed loop never exceeds quotas), every counter aggregates, and the
  // run is TSan-clean (this suite runs under TSan in CI).
  auto& stack = GetSharedStack();
  EngineOptions opt;
  opt.work_dir = MakeTempDir("tenant_live");
  opt.delta_t_seconds = 300;
  opt.query_threads = 2;
  opt.result_cache_entries = 128;
  opt.max_inflight_queries = 4;
  opt.tenant_fairness = true;
  opt.live_ingestion = true;
  opt.live_batch_window_ms = 20;
  auto engine_or = ReachabilityEngine::Build(stack.dataset.network,
                                             *stack.dataset.store, opt);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  auto& engine = *engine_or;
  TenantRegistry* registry = engine->tenant_registry();
  ASSERT_NE(registry, nullptr);
  registry->Configure(1, {.weight = 4, .max_inflight = 3, .max_queued = 16});
  registry->Configure(2, {.weight = 2, .max_inflight = 2, .max_queued = 16});
  registry->Configure(3, {.weight = 1, .max_inflight = 2, .max_queued = 16});

  std::vector<QueryPlan> plans;
  for (TenantId tenant : {1u, 2u, 3u}) {
    auto plan = engine->planner().PlanSQuery(
        {stack.dataset.center, HMS(9 + tenant), 600, 0.2},
        QueryStrategy::kIndexed, tenant);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    plans.push_back(*plan);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> local_served[4] = {{0}, {0}, {0}, {0}};
  std::vector<std::thread> workers;
  for (size_t p = 0; p < plans.size(); ++p) {
    for (int c = 0; c < 2; ++c) {
      workers.emplace_back([&, p] {
        const QueryPlan& plan = plans[p];
        while (!stop.load()) {
          auto result = engine->executor().Execute(plan);
          if (result.ok()) {
            local_served[plan.tenant].fetch_add(1);
          } else if (!result.status().IsResourceExhausted()) {
            failures.fetch_add(1);
          }
        }
      });
    }
  }
  std::thread feeder([&] {
    const RoadNetwork& network = engine->network();
    uint64_t i = 0;
    while (!stop.load()) {
      SegmentId seg = static_cast<SegmentId>(i % network.NumSegments());
      int64_t tod = static_cast<int64_t>((i * 977) % kSecondsPerDay);
      engine->ApplySpeedObservation(seg, tod, 6.0 + (i % 7));
      ++i;
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  stop.store(true);
  for (auto& t : workers) t.join();
  feeder.join();

  EXPECT_EQ(failures.load(), 0);
  QueryExecutor::FrontDoorStats stats = engine->executor().front_door_stats();
  uint64_t hit_sum = 0, completed_sum = 0;
  for (const TenantCounters& t : stats.tenants) {
    hit_sum += t.cache_hits;
    completed_sum += t.completed;
    EXPECT_EQ(t.inflight, 0u) << "tenant " << t.tenant;
  }
  EXPECT_EQ(hit_sum, stats.cache_hits);
  uint64_t served_sum = 0;
  for (int t = 1; t <= 3; ++t) served_sum += local_served[t].load();
  EXPECT_EQ(hit_sum + completed_sum, served_sum);
  EXPECT_GT(served_sum, 0u);
}

}  // namespace
}  // namespace strr
