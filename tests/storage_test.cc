// Tests for the storage layer: FileManager, BufferPool, PostingStore.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "storage/buffer_pool.h"
#include "storage/file_manager.h"
#include "storage/posting_store.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace strr {
namespace {

using testing_util::MakeTempDir;

std::string TempFile(const std::string& tag) {
  return MakeTempDir(tag) + "/file.bin";
}

// --- FileManager -------------------------------------------------------------

TEST(FileManagerTest, CreateAllocateWriteRead) {
  std::string path = TempFile("fm1");
  auto fm = FileManager::Create(path, 256);
  ASSERT_TRUE(fm.ok());
  auto p0 = (*fm)->AllocatePage();
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(*p0, 0u);
  Page page(256);
  page.Write(0, "hello", 5);
  ASSERT_TRUE((*fm)->WritePage(*p0, page).ok());
  Page out(256);
  ASSERT_TRUE((*fm)->ReadPage(*p0, &out).ok());
  EXPECT_EQ(std::string(out.data(), 5), "hello");
}

TEST(FileManagerTest, PagesArePersistent) {
  std::string path = TempFile("fm2");
  {
    auto fm = FileManager::Create(path, 128);
    ASSERT_TRUE(fm.ok());
    ASSERT_TRUE((*fm)->AllocatePage().ok());
    ASSERT_TRUE((*fm)->AllocatePage().ok());
    Page page(128);
    page.Write(10, "xyz", 3);
    ASSERT_TRUE((*fm)->WritePage(1, page).ok());
    ASSERT_TRUE((*fm)->Sync().ok());
  }
  auto fm = FileManager::Open(path, 128);
  ASSERT_TRUE(fm.ok());
  EXPECT_EQ((*fm)->NumPages(), 2u);
  Page out(128);
  ASSERT_TRUE((*fm)->ReadPage(1, &out).ok());
  EXPECT_EQ(std::string(out.data() + 10, 3), "xyz");
}

TEST(FileManagerTest, ReadBeyondEofFails) {
  auto fm = FileManager::Create(TempFile("fm3"), 128);
  ASSERT_TRUE(fm.ok());
  Page page(128);
  EXPECT_TRUE((*fm)->ReadPage(0, &page).IsOutOfRange());
}

TEST(FileManagerTest, WriteBeyondEofFails) {
  auto fm = FileManager::Create(TempFile("fm4"), 128);
  ASSERT_TRUE(fm.ok());
  Page page(128);
  EXPECT_TRUE((*fm)->WritePage(3, page).IsOutOfRange());
}

TEST(FileManagerTest, PageSizeMismatchRejected) {
  auto fm = FileManager::Create(TempFile("fm5"), 128);
  ASSERT_TRUE(fm.ok());
  ASSERT_TRUE((*fm)->AllocatePage().ok());
  Page wrong(256);
  EXPECT_TRUE((*fm)->ReadPage(0, &wrong).IsInvalidArgument());
  EXPECT_TRUE((*fm)->WritePage(0, wrong).IsInvalidArgument());
}

TEST(FileManagerTest, OpenMissingFileFails) {
  EXPECT_TRUE(
      FileManager::Open("/nonexistent_dir_xyz/f.bin", 128)
          .status()
          .IsIoError());
}

TEST(FileManagerTest, OpenMisalignedFileFails) {
  std::string path = TempFile("fm6");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("not a page multiple", f);
    std::fclose(f);
  }
  EXPECT_TRUE(FileManager::Open(path, 128).status().IsCorruption());
}

TEST(FileManagerTest, TinyPageSizeRejected) {
  EXPECT_TRUE(
      FileManager::Create(TempFile("fm7"), 16).status().IsInvalidArgument());
}

TEST(FileManagerTest, StatsCountTransfers) {
  auto fm = FileManager::Create(TempFile("fm8"), 128);
  ASSERT_TRUE(fm.ok());
  ASSERT_TRUE((*fm)->AllocatePage().ok());  // counts as a write
  Page page(128);
  ASSERT_TRUE((*fm)->WritePage(0, page).ok());
  ASSERT_TRUE((*fm)->ReadPage(0, &page).ok());
  ASSERT_TRUE((*fm)->ReadPage(0, &page).ok());
  EXPECT_EQ((*fm)->stats().disk_page_writes, 2u);
  EXPECT_EQ((*fm)->stats().disk_page_reads, 2u);
  (*fm)->ResetStats();
  EXPECT_EQ((*fm)->stats().disk_page_reads, 0u);
}

// --- BufferPool --------------------------------------------------------------

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fm = FileManager::Create(TempFile("bp"), 128);
    ASSERT_TRUE(fm.ok());
    fm_ = std::move(*fm);
    for (int i = 0; i < 8; ++i) {
      auto id = fm_->AllocatePage();
      ASSERT_TRUE(id.ok());
      Page page(128);
      page.Write(0, &i, sizeof(i));
      ASSERT_TRUE(fm_->WritePage(*id, page).ok());
    }
    fm_->ResetStats();
  }

  int PageTag(const Page* p) {
    int tag;
    p->Read(0, &tag, sizeof(tag));
    return tag;
  }

  std::unique_ptr<FileManager> fm_;
};

TEST_F(BufferPoolTest, MissThenHit) {
  BufferPool pool(fm_.get(), 4);
  auto p = pool.Fetch(2);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(PageTag(*p), 2);
  EXPECT_EQ(pool.stats().cache_misses, 1u);
  p = pool.Fetch(2);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(pool.stats().cache_hits, 1u);
  EXPECT_EQ(pool.stats().disk_page_reads, 1u);
}

TEST_F(BufferPoolTest, EvictsLeastRecentlyUsed) {
  BufferPool pool(fm_.get(), 2);
  ASSERT_TRUE(pool.Fetch(0).ok());
  ASSERT_TRUE(pool.Fetch(1).ok());
  ASSERT_TRUE(pool.Fetch(0).ok());  // 0 now more recent than 1
  ASSERT_TRUE(pool.Fetch(2).ok());  // evicts 1
  EXPECT_EQ(pool.stats().evictions, 1u);
  pool.ResetStats();
  ASSERT_TRUE(pool.Fetch(0).ok());  // still cached
  EXPECT_EQ(pool.stats().cache_hits, 1u);
  ASSERT_TRUE(pool.Fetch(1).ok());  // was evicted -> miss
  EXPECT_EQ(pool.stats().cache_misses, 1u);
}

TEST_F(BufferPoolTest, CapacityZeroAlwaysMisses) {
  BufferPool pool(fm_.get(), 0);
  for (int round = 0; round < 3; ++round) {
    auto p = pool.Fetch(1);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(PageTag(*p), 1);
  }
  EXPECT_EQ(pool.stats().cache_misses, 3u);
  EXPECT_EQ(pool.stats().cache_hits, 0u);
}

TEST_F(BufferPoolTest, FetchBadPageFails) {
  BufferPool pool(fm_.get(), 4);
  EXPECT_FALSE(pool.Fetch(99).ok());
  // A failed fetch must not leave a poisoned frame behind.
  EXPECT_EQ(pool.CachedPages(), 0u);
}

TEST_F(BufferPoolTest, WriteThroughUpdatesDiskAndCache) {
  BufferPool pool(fm_.get(), 4);
  ASSERT_TRUE(pool.Fetch(3).ok());
  Page page(128);
  int v = 42;
  page.Write(0, &v, sizeof(v));
  ASSERT_TRUE(pool.WriteThrough(3, page).ok());
  auto p = pool.Fetch(3);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(PageTag(*p), 42);  // cache refreshed
  Page direct(128);
  ASSERT_TRUE(fm_->ReadPage(3, &direct).ok());
  EXPECT_EQ(PageTag(&direct), 42);  // disk updated
}

TEST_F(BufferPoolTest, ClearDropsPagesKeepsStats) {
  BufferPool pool(fm_.get(), 4);
  ASSERT_TRUE(pool.Fetch(0).ok());
  ASSERT_TRUE(pool.Fetch(1).ok());
  EXPECT_EQ(pool.CachedPages(), 2u);
  pool.Clear();
  EXPECT_EQ(pool.CachedPages(), 0u);
  EXPECT_EQ(pool.stats().cache_misses, 2u);
  ASSERT_TRUE(pool.Fetch(0).ok());
  EXPECT_EQ(pool.stats().cache_misses, 3u);
}

TEST_F(BufferPoolTest, HitRatioUnderWorkingSet) {
  BufferPool pool(fm_.get(), 8);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(pool.Fetch(rng.UniformInt(0, 7)).ok());
  }
  // All 8 pages fit: exactly 8 misses.
  EXPECT_EQ(pool.stats().cache_misses, 8u);
  EXPECT_EQ(pool.stats().cache_hits, 192u);
}

// --- PostingStore ------------------------------------------------------------

TEST(PostingStoreTest, RoundTripSmall) {
  std::string path = TempFile("ps1");
  auto builder = PostingStoreBuilder::Create(path, 256);
  ASSERT_TRUE(builder.ok());
  ASSERT_TRUE((*builder)->Add(MakePostingKey(1, 2), "alpha").ok());
  ASSERT_TRUE((*builder)->Add(MakePostingKey(3, 4), "beta").ok());
  ASSERT_TRUE((*builder)->Finish().ok());

  auto store = PostingStore::Open(path, 16, 256);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->NumEntries(), 2u);
  EXPECT_EQ((*store)->Get(MakePostingKey(1, 2)).value(), "alpha");
  EXPECT_EQ((*store)->Get(MakePostingKey(3, 4)).value(), "beta");
}

TEST(PostingStoreTest, MissingKeyIsNotFound) {
  std::string path = TempFile("ps2");
  auto builder = PostingStoreBuilder::Create(path, 256);
  ASSERT_TRUE(builder.ok());
  ASSERT_TRUE((*builder)->Add(7, "x").ok());
  ASSERT_TRUE((*builder)->Finish().ok());
  auto store = PostingStore::Open(path, 16, 256);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->Get(8).status().IsNotFound());
  EXPECT_TRUE((*store)->Contains(7));
  EXPECT_FALSE((*store)->Contains(8));
}

TEST(PostingStoreTest, DuplicateKeyRejected) {
  auto builder = PostingStoreBuilder::Create(TempFile("ps3"), 256);
  ASSERT_TRUE(builder.ok());
  ASSERT_TRUE((*builder)->Add(1, "a").ok());
  EXPECT_TRUE((*builder)->Add(1, "b").IsAlreadyExists());
}

TEST(PostingStoreTest, BlobsSpanningPages) {
  std::string path = TempFile("ps4");
  auto builder = PostingStoreBuilder::Create(path, 128);
  ASSERT_TRUE(builder.ok());
  std::string big(1000, 'q');
  big[0] = 'A';
  big[999] = 'Z';
  ASSERT_TRUE((*builder)->Add(5, big).ok());
  ASSERT_TRUE((*builder)->Add(6, "tail").ok());
  ASSERT_TRUE((*builder)->Finish().ok());
  auto store = PostingStore::Open(path, 16, 128);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->Get(5).value(), big);
  EXPECT_EQ((*store)->Get(6).value(), "tail");
}

TEST(PostingStoreTest, EmptyBlobAllowed) {
  std::string path = TempFile("ps5");
  auto builder = PostingStoreBuilder::Create(path, 256);
  ASSERT_TRUE(builder.ok());
  ASSERT_TRUE((*builder)->Add(9, "").ok());
  ASSERT_TRUE((*builder)->Finish().ok());
  auto store = PostingStore::Open(path, 16, 256);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->Get(9).value(), "");
}

TEST(PostingStoreTest, ManyEntriesRandomized) {
  std::string path = TempFile("ps6");
  auto builder = PostingStoreBuilder::Create(path, 512);
  ASSERT_TRUE(builder.ok());
  Rng rng(21);
  std::vector<std::pair<PostingKey, std::string>> entries;
  for (int i = 0; i < 500; ++i) {
    std::string blob(rng.UniformInt(0, 300), 0);
    for (auto& c : blob) c = static_cast<char>(rng.UniformInt(0, 255));
    entries.emplace_back(static_cast<PostingKey>(i * 7 + 1), blob);
    ASSERT_TRUE((*builder)->Add(entries.back().first, blob).ok());
  }
  ASSERT_TRUE((*builder)->Finish().ok());
  auto store = PostingStore::Open(path, 64, 512);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->NumEntries(), 500u);
  for (const auto& [key, blob] : entries) {
    EXPECT_EQ((*store)->Get(key).value(), blob);
  }
}

TEST(PostingStoreTest, AddAfterFinishFails) {
  auto builder = PostingStoreBuilder::Create(TempFile("ps7"), 256);
  ASSERT_TRUE(builder.ok());
  ASSERT_TRUE((*builder)->Finish().ok());
  EXPECT_TRUE((*builder)->Add(1, "x").IsFailedPrecondition());
  EXPECT_TRUE((*builder)->Finish().IsFailedPrecondition());
}

TEST(PostingStoreTest, CorruptMagicRejected) {
  std::string path = TempFile("ps8");
  {
    auto builder = PostingStoreBuilder::Create(path, 256);
    ASSERT_TRUE(builder.ok());
    ASSERT_TRUE((*builder)->Add(1, "x").ok());
    ASSERT_TRUE((*builder)->Finish().ok());
  }
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fputs("garbage!", f);
    std::fclose(f);
  }
  EXPECT_TRUE(PostingStore::Open(path, 16, 256).status().IsCorruption());
}

TEST(PostingStoreTest, WrongPageSizeRejected) {
  std::string path = TempFile("ps9");
  auto builder = PostingStoreBuilder::Create(path, 256);
  ASSERT_TRUE(builder.ok());
  ASSERT_TRUE((*builder)->Finish().ok());
  // 512 does not divide the file evenly or match the header.
  auto opened = PostingStore::Open(path, 16, 512);
  EXPECT_FALSE(opened.ok());
}

TEST(PostingStoreTest, StatsCountIo) {
  std::string path = TempFile("ps10");
  auto builder = PostingStoreBuilder::Create(path, 256);
  ASSERT_TRUE(builder.ok());
  ASSERT_TRUE((*builder)->Add(1, std::string(600, 'a')).ok());
  ASSERT_TRUE((*builder)->Finish().ok());
  auto store = PostingStore::Open(path, 16, 256);
  ASSERT_TRUE(store.ok());
  (*store)->ResetStats();
  ASSERT_TRUE((*store)->Get(1).ok());
  auto stats = (*store)->stats();
  EXPECT_EQ(stats.cache_misses, 3u);  // 600 bytes over 256B pages
  ASSERT_TRUE((*store)->Get(1).ok());
  stats = (*store)->stats();
  EXPECT_EQ(stats.cache_hits, 3u);
  (*store)->DropCache();
  ASSERT_TRUE((*store)->Get(1).ok());
  stats = (*store)->stats();
  EXPECT_EQ(stats.cache_misses, 6u);
}

TEST(PostingStoreTest, TruncatedFileFailsOpen) {
  std::string path = TempFile("ps11");
  {
    auto builder = PostingStoreBuilder::Create(path, 256);
    ASSERT_TRUE(builder.ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE((*builder)->Add(i, std::string(100, 'b')).ok());
    }
    ASSERT_TRUE((*builder)->Finish().ok());
  }
  // Chop the file to half its pages (keeping page alignment).
  auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, (size / 2 / 256) * 256);
  EXPECT_FALSE(PostingStore::Open(path, 16, 256).ok());
}

}  // namespace
}  // namespace strr
