// Tests for the observability layer: sharded metric merge under
// multi-threaded hammering, histogram bucket math and percentile accuracy
// against a sorted-sample oracle, Prometheus/JSON export shape, span
// nesting and buffer ownership, flight-recorder wraparound, and the
// slow-query log trigger.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace strr::obs {
namespace {

// --- Metrics: enable gating and merge -----------------------------------

TEST(MetricsTest, DisabledRegistryDropsWrites) {
  MetricsRegistry reg(/*enabled=*/false);
  Counter& c = reg.GetCounter("strr_test_total");
  Gauge& g = reg.GetGauge("strr_test_gauge");
  Histogram& h = reg.GetHistogram("strr_test_us");
  c.Add(5);
  g.Set(7);
  g.Add(3);
  h.Record(123);
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(g.Value(), 0);
  EXPECT_EQ(h.Count(), 0u);
}

TEST(MetricsTest, GetReturnsStableHandles) {
  MetricsRegistry reg(/*enabled=*/true);
  Counter& a = reg.GetCounter("strr_test_total");
  Counter& b = reg.GetCounter("strr_test_total");
  EXPECT_EQ(&a, &b);
  a.Add(2);
  b.Add(3);
  EXPECT_EQ(a.Value(), 5u);
}

TEST(MetricsTest, CounterMergesAcrossThreads) {
  MetricsRegistry reg(/*enabled=*/true);
  Counter& c = reg.GetCounter("strr_hammer_total");
  Histogram& h = reg.GetHistogram("strr_hammer_us");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Add();
        h.Record(static_cast<uint64_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  // Sum of t over threads, kPerThread each: kPerThread * (0+1+...+7).
  EXPECT_EQ(h.Sum(), static_cast<uint64_t>(kPerThread) * 28);
}

TEST(MetricsTest, GaugeAddTracksLevelAcrossThreads) {
  MetricsRegistry reg(/*enabled=*/true);
  Gauge& g = reg.GetGauge("strr_test_depth");
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kIters; ++i) {
        g.Add(1);
        g.Add(-1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(g.Value(), 0);
}

TEST(MetricsTest, ResetValuesZeroesButKeepsHandles) {
  MetricsRegistry reg(/*enabled=*/true);
  Counter& c = reg.GetCounter("strr_test_total");
  Histogram& h = reg.GetHistogram("strr_test_us");
  c.Add(9);
  h.Record(100);
  reg.ResetValues();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(h.Count(), 0u);
  c.Add(1);  // handle still live
  EXPECT_EQ(c.Value(), 1u);
}

// --- Histogram bucket math and percentiles -------------------------------

TEST(HistogramTest, BucketBoundsContainTheirValues) {
  // Every probe value must land in a bucket whose [lower, upper) range
  // contains it, and bucket indexes must be monotone in the value.
  std::vector<uint64_t> probes;
  for (uint64_t v = 0; v < 200; ++v) probes.push_back(v);
  for (int p = 8; p < Histogram::kMaxPow2 + 2; ++p) {
    uint64_t base = 1ull << p;
    probes.push_back(base - 1);
    probes.push_back(base);
    probes.push_back(base + base / 3);
  }
  size_t prev_index = 0;
  uint64_t prev_value = 0;
  for (uint64_t v : probes) {
    size_t idx = Histogram::BucketIndex(v);
    ASSERT_LT(idx, Histogram::kNumBuckets);
    EXPECT_GE(v, Histogram::BucketLowerBound(idx)) << "value " << v;
    if (idx + 1 < Histogram::kNumBuckets) {
      EXPECT_LT(v, Histogram::BucketUpperBound(idx)) << "value " << v;
    }
    if (v > prev_value) {
      EXPECT_GE(idx, prev_index) << "value " << v;
    }
    prev_value = v;
    prev_index = idx;
  }
}

TEST(HistogramTest, PercentileMatchesSortedSampleOracle) {
  MetricsRegistry reg(/*enabled=*/true);
  Histogram& h = reg.GetHistogram("strr_test_us");
  // Deterministic LCG spanning several octaves; the oracle is the sorted
  // sample array.
  std::vector<uint64_t> samples;
  uint64_t x = 0x2545F4914F6CDD1Dull;
  for (int i = 0; i < 50000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    uint64_t v = (x >> 33) % 1000000;  // [0, 1e6) microseconds
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    double est = h.Percentile(q);
    double oracle = static_cast<double>(
        samples[static_cast<size_t>(q * (samples.size() - 1))]);
    // Log-linear buckets with 8 sub-buckets per octave: worst case
    // relative error one bucket width, 12.5%, plus interpolation slack.
    EXPECT_NEAR(est, oracle, oracle * 0.13 + 1.0) << "q=" << q;
  }
}

TEST(HistogramTest, SmallValuesAreExact) {
  MetricsRegistry reg(/*enabled=*/true);
  Histogram& h = reg.GetHistogram("strr_test_us");
  // Unit buckets below kLinearMax: the median of {10 x 4, 20 x 6} is 20.
  for (int i = 0; i < 4; ++i) h.Record(10);
  for (int i = 0; i < 6; ++i) h.Record(20);
  EXPECT_GE(h.Percentile(0.5), 10.0);
  EXPECT_LT(h.Percentile(0.5), 21.0);
  EXPECT_GE(h.Percentile(0.99), 20.0);
  EXPECT_LT(h.Percentile(0.99), 21.0);
}

TEST(HistogramTest, EmptyHistogramReportsZero) {
  MetricsRegistry reg(/*enabled=*/true);
  Histogram& h = reg.GetHistogram("strr_test_us");
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
}

// --- Export surfaces -----------------------------------------------------

TEST(MetricsExportTest, PrometheusShapeIsWellFormed) {
  MetricsRegistry reg(/*enabled=*/true);
  reg.GetCounter("strr_test_total").Add(42);
  reg.GetGauge("strr_test_depth").Set(7);
  Histogram& h = reg.GetHistogram("strr_test_us");
  h.Record(10);
  h.Record(100);
  h.Record(100000);

  std::string text;
  reg.DumpPrometheus(&text);
  EXPECT_NE(text.find("# TYPE strr_test_total counter"), std::string::npos)
      << text;
  EXPECT_NE(text.find("strr_test_total 42"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE strr_test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("strr_test_depth 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE strr_test_us histogram"), std::string::npos);
  EXPECT_NE(text.find("strr_test_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("strr_test_us_count 3"), std::string::npos);
  EXPECT_NE(text.find("strr_test_us_sum 100110"), std::string::npos);

  // Exposition-format sanity: every non-comment line is `name{...} value`
  // or `name value`, and cumulative bucket counts never decrease.
  uint64_t prev_bucket = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string value = line.substr(space + 1);
    ASSERT_FALSE(value.empty()) << line;
    EXPECT_NE(value.find_first_of("0123456789"), std::string::npos) << line;
    if (line.find("strr_test_us_bucket{") == 0) {
      uint64_t v = std::stoull(value);
      EXPECT_GE(v, prev_bucket) << line;
      prev_bucket = v;
    }
  }
}

TEST(MetricsTest, LabeledSeriesAreDistinctAndCanonical) {
  MetricsRegistry reg(/*enabled=*/true);
  Counter& unlabeled = reg.GetCounter("strr_shard_total");
  Counter& s0 = reg.GetCounter("strr_shard_total", {{"shard", "0"}});
  Counter& s1 = reg.GetCounter("strr_shard_total", {{"shard", "1"}});
  EXPECT_NE(&unlabeled, &s0);
  EXPECT_NE(&s0, &s1);
  // Label order never splits a series: keys are canonically sorted.
  Counter& ab = reg.GetCounter("strr_pair_total",
                               {{"a", "1"}, {"b", "2"}});
  Counter& ba = reg.GetCounter("strr_pair_total",
                               {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&ab, &ba);
  EXPECT_EQ(MetricsRegistry::CanonicalLabels({{"b", "2"}, {"a", "1"}}),
            "{a=\"1\",b=\"2\"}");
  EXPECT_EQ(MetricsRegistry::CanonicalLabels({}), "");

  unlabeled.Add(1);
  s0.Add(2);
  s1.Add(3);
  EXPECT_EQ(unlabeled.Value(), 1u);
  EXPECT_EQ(s0.Value(), 2u);
  EXPECT_EQ(s1.Value(), 3u);
}

TEST(MetricsExportTest, PrometheusEmitsOneTypeLinePerLabeledFamily) {
  MetricsRegistry reg(/*enabled=*/true);
  reg.GetCounter("strr_shard_total", {{"shard", "0"}}).Add(4);
  reg.GetCounter("strr_shard_total", {{"shard", "1"}}).Add(5);
  reg.GetCounter("strr_shard_total").Add(6);
  reg.GetHistogram("strr_shard_us", {{"shard", "0"}}).Record(10);

  std::string text;
  reg.DumpPrometheus(&text);
  // One # TYPE per base name even with several labeled series (label
  // suffixes sort after '_' in byte order, so naive map-order grouping
  // would emit duplicates).
  size_t type_lines = 0;
  for (size_t pos = text.find("# TYPE strr_shard_total counter");
       pos != std::string::npos;
       pos = text.find("# TYPE strr_shard_total counter", pos + 1)) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u) << text;
  EXPECT_NE(text.find("strr_shard_total{shard=\"0\"} 4"), std::string::npos)
      << text;
  EXPECT_NE(text.find("strr_shard_total{shard=\"1\"} 5"), std::string::npos);
  EXPECT_NE(text.find("strr_shard_total 6"), std::string::npos);
  // Histogram `le` splices into the series' own label set.
  EXPECT_NE(text.find("strr_shard_us_bucket{shard=\"0\",le=\"+Inf\"} 1"),
            std::string::npos)
      << text;
}

TEST(MetricsExportTest, JsonContainsPercentiles) {
  MetricsRegistry reg(/*enabled=*/true);
  Histogram& h = reg.GetHistogram("strr_test_us");
  for (int i = 1; i <= 100; ++i) h.Record(static_cast<uint64_t>(i * 100));
  std::string json;
  reg.DumpJson(&json);
  EXPECT_NE(json.find("\"strr_test_us\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":100"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\""), std::string::npos) << json;
}

// --- Tracing -------------------------------------------------------------

/// Restores the global tracer to disabled after each tracing test; the
/// tracer is process-global, so tests must not leak configuration.
class TracingTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().ResetForTest();
  }
};

TEST_F(TracingTest, SpanIsNoOpWhenDisabled) {
  Tracer::Global().Disable();
  QueryTrace root("query");
  EXPECT_FALSE(root.active());
  { TraceSpan span("child"); }
  EXPECT_EQ(Tracer::Global().events_recorded(), 0u);
}

TEST_F(TracingTest, NestedSpansRecordDepthAndOrder) {
  Tracer::Global().Configure(
      {.sample_n = 1, .flight_recorder_events = 64, .slow_query_ms = 0.0});
  Tracer::Global().ResetForTest();
  {
    QueryTrace root("query");
    ASSERT_TRUE(root.active());
    {
      TraceSpan outer("expand", 17);
      { TraceSpan inner("round"); }
      { TraceSpan inner2("round"); }
    }
    { TraceSpan tbs("tbs"); }
  }
  std::vector<TraceEvent> events = Tracer::Global().FlightRecorderSnapshot();
  ASSERT_EQ(events.size(), 5u);  // round, round, expand, tbs, query
  // Spans close innermost-first; the root closes last.
  EXPECT_STREQ(events[0].name, "round");
  EXPECT_EQ(events[0].depth, 2);
  EXPECT_STREQ(events[1].name, "round");
  EXPECT_STREQ(events[2].name, "expand");
  EXPECT_EQ(events[2].depth, 1);
  EXPECT_EQ(events[2].arg, 17u);
  EXPECT_STREQ(events[3].name, "tbs");
  EXPECT_EQ(events[3].depth, 1);
  EXPECT_STREQ(events[4].name, "query");
  EXPECT_EQ(events[4].depth, 0);
  // All events share the query id, and parents cover their children.
  for (const TraceEvent& ev : events) {
    EXPECT_EQ(ev.query_id, events[0].query_id);
  }
  EXPECT_LE(events[2].start_us, events[0].start_us);
  EXPECT_GE(events[2].start_us + events[2].dur_us,
            events[0].start_us + events[0].dur_us);
}

TEST_F(TracingTest, SpansPropagateIntoThreadPoolWorkers) {
  Tracer::Global().Configure(
      {.sample_n = 1, .flight_recorder_events = 64, .slow_query_ms = 0.0});
  Tracer::Global().ResetForTest();
  ThreadPool pool(2);
  {
    QueryTrace root("query");
    ASSERT_TRUE(root.active());
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 4; ++i) {
      futures.push_back(pool.Submit([i]() -> int {
        TraceSpan span("worker_slice", static_cast<uint64_t>(i));
        return i;
      }));
    }
    // Tasks must be joined before the root closes (the worker spans write
    // into the root's buffer) — exactly the executor's contract.
    for (auto& f : futures) f.get();
  }
  std::vector<TraceEvent> events = Tracer::Global().FlightRecorderSnapshot();
  ASSERT_EQ(events.size(), 5u) << "4 worker spans + the root";
  uint64_t query_id = events.back().query_id;
  size_t worker_spans = 0;
  for (const TraceEvent& ev : events) {
    EXPECT_EQ(ev.query_id, query_id)
        << "a pool-run span detached from its submitting query";
    if (std::string_view(ev.name) == "worker_slice") {
      ++worker_spans;
      EXPECT_GE(ev.depth, 1);
    }
  }
  EXPECT_EQ(worker_spans, 4u);
}

TEST_F(TracingTest, NestedQueryTraceDegradesToChildSpan) {
  Tracer::Global().Configure(
      {.sample_n = 1, .flight_recorder_events = 64, .slow_query_ms = 0.0});
  Tracer::Global().ResetForTest();
  {
    QueryTrace facade("request");
    ASSERT_TRUE(facade.active());
    {
      QueryTrace executor("query");
      EXPECT_FALSE(executor.active());  // degraded: outer frame owns
      { TraceSpan span("cache_lookup"); }
    }
  }
  std::vector<TraceEvent> events = Tracer::Global().FlightRecorderSnapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "cache_lookup");
  EXPECT_EQ(events[0].depth, 2);
  EXPECT_STREQ(events[1].name, "query");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_STREQ(events[2].name, "request");
  EXPECT_EQ(events[2].depth, 0);
}

TEST_F(TracingTest, SamplingSelectsOneInN) {
  Tracer::Global().Configure(
      {.sample_n = 4, .flight_recorder_events = 256, .slow_query_ms = 0.0});
  Tracer::Global().ResetForTest();
  for (int i = 0; i < 16; ++i) {
    QueryTrace root("query");
  }
  // 1-in-4 of 16 queries, one root span each.
  EXPECT_EQ(Tracer::Global().events_recorded(), 4u);
}

TEST_F(TracingTest, RingWrapsKeepingMostRecent) {
  Tracer::Global().Configure(
      {.sample_n = 1, .flight_recorder_events = 8, .slow_query_ms = 0.0});
  Tracer::Global().ResetForTest();
  for (int i = 0; i < 20; ++i) {
    QueryTrace root("query");
  }
  EXPECT_EQ(Tracer::Global().events_recorded(), 20u);
  std::vector<TraceEvent> events = Tracer::Global().FlightRecorderSnapshot();
  ASSERT_EQ(events.size(), 8u);  // capacity, not total
  // Oldest-first snapshot of the 8 most recent queries: ids 13..20.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].query_id, 13 + i);
  }
}

TEST_F(TracingTest, ShallowSpansSurviveTheEventCap) {
  Tracer::Global().Configure(
      {.sample_n = 1, .flight_recorder_events = 2048, .slow_query_ms = 0.0});
  Tracer::Global().ResetForTest();
  {
    QueryTrace root("request");      // depth 0
    TraceSpan query("query");        // depth 1
    TraceSpan search("search");      // depth 2
    // Far past the per-query cap: a chatty expansion closes leaves first,
    // so without the shallow-span allowance the query's own summary spans
    // (search/query/request, which close last) would be the ones dropped.
    for (int i = 0; i < 700; ++i) {
      TraceSpan hop("hop");          // depth 3
      TraceSpan leaf("leaf");        // depth 4
    }
  }
  EXPECT_GT(Tracer::Global().events_dropped(), 0u);
  std::vector<TraceEvent> events = Tracer::Global().FlightRecorderSnapshot();
  int shallow_seen = 0;
  for (const TraceEvent& ev : events) {
    if (std::string(ev.name) == "request" ||
        std::string(ev.name) == "query" ||
        std::string(ev.name) == "search") {
      ++shallow_seen;
      EXPECT_LE(ev.depth, 2);
    }
  }
  EXPECT_EQ(shallow_seen, 3);
}

TEST_F(TracingTest, SlowQueryTriggersReportAndForceRecord) {
  // sample_n = 0: nothing records unless the slow-query path forces it.
  Tracer::Global().Configure({.sample_n = 0,
                              .flight_recorder_events = 64,
                              .slow_query_ms = 0.001});
  Tracer::Global().ResetForTest();
  {
    QueryTrace root("query");
    ASSERT_TRUE(root.active());  // armed by the slow-query sink
    TraceSpan span("expand");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(Tracer::Global().slow_queries(), 1u);
  EXPECT_GT(Tracer::Global().events_recorded(), 0u);
  std::string report = Tracer::Global().last_slow_report();
  EXPECT_NE(report.find("slow query"), std::string::npos) << report;
  EXPECT_NE(report.find("expand"), std::string::npos) << report;
  EXPECT_NE(report.find("query"), std::string::npos) << report;
}

TEST_F(TracingTest, FastQueryBelowThresholdDoesNotReport) {
  Tracer::Global().Configure({.sample_n = 0,
                              .flight_recorder_events = 64,
                              .slow_query_ms = 10000.0});
  Tracer::Global().ResetForTest();
  {
    QueryTrace root("query");
    TraceSpan span("expand");
  }
  EXPECT_EQ(Tracer::Global().slow_queries(), 0u);
  EXPECT_EQ(Tracer::Global().events_recorded(), 0u);
  EXPECT_TRUE(Tracer::Global().last_slow_report().empty());
}

TEST_F(TracingTest, ChromeTraceIsWellFormedJson) {
  Tracer::Global().Configure(
      {.sample_n = 1, .flight_recorder_events = 64, .slow_query_ms = 0.0});
  Tracer::Global().ResetForTest();
  {
    QueryTrace root("query");
    TraceSpan span("expand", 3);
  }
  std::string json;
  Tracer::Global().DumpChromeTrace(&json);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"expand\""), std::string::npos) << json;
  // Balanced braces/brackets: a cheap structural parse.
  int braces = 0, brackets = 0;
  for (char ch : json) {
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST_F(TracingTest, ConcurrentTracedQueriesKeepSpanTreesSeparate) {
  Tracer::Global().Configure({.sample_n = 1,
                              .flight_recorder_events = 16384,
                              .slow_query_ms = 0.0});
  Tracer::Global().ResetForTest();
  constexpr int kThreads = 4;
  constexpr int kQueries = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kQueries; ++i) {
        QueryTrace root("query");
        TraceSpan a("expand");
        TraceSpan b("round");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(Tracer::Global().events_recorded(),
            static_cast<uint64_t>(kThreads) * kQueries * 3);
  // Every query's three spans must agree on the query id and nest by
  // depth (the ring holds whole queries: 3 events pushed atomically).
  std::vector<TraceEvent> events = Tracer::Global().FlightRecorderSnapshot();
  ASSERT_EQ(events.size() % 3, 0u);
  for (size_t i = 0; i < events.size(); i += 3) {
    EXPECT_EQ(events[i].query_id, events[i + 1].query_id);
    EXPECT_EQ(events[i].query_id, events[i + 2].query_id);
    EXPECT_EQ(events[i].depth, 2);      // innermost closes first
    EXPECT_EQ(events[i + 1].depth, 1);
    EXPECT_EQ(events[i + 2].depth, 0);  // root
  }
}

}  // namespace
}  // namespace strr::obs
