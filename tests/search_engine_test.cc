// src/search/ tests: the unified frontier-search core.
//
//  * ExpansionContext pooling (epoch-stamped reuse, pool hit accounting);
//  * the parallel-vs-sequential bit-identity oracle for timed (Dijkstra)
//    expansion across randomized cities and tie-heavy uniform grids;
//  * SQMB / MQMB parallel-interior bit-identity over a real engine stack;
//  * Con-Index parallel-build determinism (concurrent builders produce
//    exactly the sequential lists);
//  * ingest-driven prewarm (LiveProfileManager rebuilds partially
//    invalidated tables in the background, bit-identical to lazy builds);
//  * a concurrent query-x-ingest hammer over an interior-parallel
//    executor (the TSan/ASan CI suite for the new subsystem).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "core/query_executor.h"
#include "core/reachability_engine.h"
#include "index/con_index.h"
#include "live/epoch_manager.h"
#include "live/live_profile_manager.h"
#include "query/bounding_region.h"
#include "roadnet/city_generator.h"
#include "roadnet/expansion.h"
#include "search/expansion_context.h"
#include "search/frontier_engine.h"
#include "tests/test_util.h"
#include "util/thread_pool.h"

namespace strr {
namespace {

using testing_util::GetSharedStack;
using testing_util::MakeGridNetwork;

/// Deterministic, thread-safe pseudo-random speed oracle (4..29 m/s).
SpeedFn HashSpeeds(uint64_t salt) {
  return [salt](SegmentId id) {
    uint64_t h = (static_cast<uint64_t>(id) + salt) * 0x9e3779b97f4a7c15ull;
    h ^= h >> 29;
    return 4.0 + static_cast<double>(h % 1000) / 40.0;
  };
}

SpeedFn ConstantSpeed(double v) {
  return [v](SegmentId) { return v; };
}

/// Forces fan-out on every round so even small frontiers exercise the
/// parallel commit path.
FrontierRuntime ParallelRuntime(ThreadPool& pool, int workers) {
  FrontierRuntime runtime;
  runtime.pool = &pool;
  runtime.workers = workers;
  runtime.min_parallel_frontier = 1;
  return runtime;
}

/// Asserts ctx-for-ctx equality of timed-expansion results.
void ExpectTimedIdentical(const RoadNetwork& net, ExpansionContext& seq,
                          ExpansionContext& par, bool origins, bool parents) {
  for (SegmentId s = 0; s < net.NumSegments(); ++s) {
    ASSERT_EQ(seq.Seen(s) && seq.Label(s) < kUnreachedLabel,
              par.Seen(s) && par.Label(s) < kUnreachedLabel)
        << "reachability differs at segment " << s;
    if (!seq.Seen(s)) continue;
    ASSERT_EQ(seq.Label(s), par.Label(s)) << "label differs at " << s;
    if (origins) {
      ASSERT_EQ(seq.Origin(s), par.Origin(s)) << "origin differs at " << s;
    }
    if (parents) {
      ASSERT_EQ(seq.Parent(s), par.Parent(s)) << "parent differs at " << s;
    }
  }
}

// --- ExpansionContext / pool ------------------------------------------------

TEST(ExpansionContextTest, BeginResetsStateCheaply) {
  ExpansionContext ctx;
  ctx.Begin(16);
  EXPECT_FALSE(ctx.Seen(3));
  EXPECT_EQ(ctx.Label(3), kUnreachedLabel);
  ctx.SetLabel(3, 12.5);
  ctx.SetOrigin(3, 7);
  ctx.SetMark(3, 42);
  EXPECT_TRUE(ctx.Seen(3));
  EXPECT_EQ(ctx.Label(3), 12.5);
  EXPECT_EQ(ctx.Origin(3), 7u);
  EXPECT_EQ(ctx.Mark(3), 42);
  EXPECT_EQ(ctx.reached().size(), 1u);

  ctx.Begin(16);  // same size: stamp bump, no reallocation
  EXPECT_FALSE(ctx.Seen(3));
  EXPECT_EQ(ctx.Label(3), kUnreachedLabel);
  EXPECT_EQ(ctx.Origin(3), kInvalidSegment);
  EXPECT_EQ(ctx.Mark(3), -1);
  EXPECT_TRUE(ctx.reached().empty());

  ctx.Begin(8);  // shrink is a fresh start too
  EXPECT_FALSE(ctx.Seen(3));
}

TEST(ExpansionContextTest, HeapPopsInNondecreasingOrder) {
  ExpansionContext ctx;
  ctx.Begin(64);
  uint64_t state = 99;
  for (int i = 0; i < 200; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    ctx.HeapPush(static_cast<double>(state % 1000), SegmentId(i % 64));
  }
  double prev = -1.0, t;
  SegmentId s;
  int count = 0;
  while (ctx.HeapPop(&t, &s)) {
    EXPECT_GE(t, prev);
    prev = t;
    ++count;
  }
  EXPECT_EQ(count, 200);
}

TEST(ExpansionContextPoolTest, LeasesRecycleContexts) {
  ExpansionContextPool pool(4);
  ExpansionContext* first = nullptr;
  {
    auto lease = pool.Acquire();
    lease->Begin(32);
    first = lease.get();
  }
  {
    auto lease = pool.Acquire();
    EXPECT_EQ(lease.get(), first) << "pool should hand the context back";
  }
  ExpansionContextPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.acquires, 2u);
  EXPECT_EQ(stats.reuses, 1u);
  EXPECT_EQ(stats.created, 1u);
  EXPECT_EQ(stats.pooled, 1u);
}

TEST(ExpansionContextPoolTest, BoundedPoolDiscardsOverflow) {
  ExpansionContextPool pool(1);
  {
    auto a = pool.Acquire();
    auto b = pool.Acquire();
  }  // both released; only one retained
  ExpansionContextPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.pooled, 1u);
  EXPECT_EQ(stats.discarded, 1u);
}

// --- Timed expansion: parallel == sequential --------------------------------

TEST(FrontierEngineTest, ParallelTimedBitIdenticalOnRandomCities) {
  ThreadPool pool(3);
  for (uint64_t seed : {3ull, 19ull, 71ull}) {
    CityOptions copt;
    copt.grid_cols = 9;
    copt.grid_rows = 7;
    copt.seed = seed;
    auto city = GenerateCity(copt);
    ASSERT_TRUE(city.ok());
    const RoadNetwork& net = city->network;
    std::vector<SegmentId> sources{
        0, SegmentId(net.NumSegments() / 3), SegmentId(net.NumSegments() / 2),
        SegmentId(net.NumSegments() - 1)};

    FrontierEngine::TimedRequest request;
    request.sources = sources;
    request.budget = 700.0;
    request.track_origin = true;
    request.track_parent = true;
    SpeedFn speeds = HashSpeeds(seed);

    FrontierEngine sequential(net);
    FrontierEngine parallel(net, ParallelRuntime(pool, 4));
    ExpansionContext seq_ctx, par_ctx;
    SearchMetrics par_metrics;
    sequential.RunTimed(seq_ctx, request, speeds);
    parallel.RunTimed(par_ctx, request, speeds, &par_metrics);

    ExpectTimedIdentical(net, seq_ctx, par_ctx, true, true);
    EXPECT_EQ(sequential.ReachedSorted(seq_ctx),
              parallel.ReachedSorted(par_ctx));
    EXPECT_GT(par_metrics.parallel_rounds, 0u) << "fan-out never engaged";
  }
}

TEST(FrontierEngineTest, ParallelTimedBitIdenticalUnderHeavyTies) {
  // Uniform grid + constant speed: nearly every segment has several
  // equal-cost shortest paths and several equidistant sources — the
  // worst case for origin/parent determinism.
  RoadNetwork net = MakeGridNetwork(9, 9, 250.0);
  ThreadPool pool(3);
  std::vector<SegmentId> sources{0, SegmentId(net.NumSegments() / 2),
                                 SegmentId(net.NumSegments() - 2)};
  FrontierEngine::TimedRequest request;
  request.sources = sources;
  request.budget = 500.0;
  request.track_origin = true;
  request.track_parent = true;
  SpeedFn speeds = ConstantSpeed(10.0);

  FrontierEngine sequential(net);
  FrontierEngine parallel(net, ParallelRuntime(pool, 4));
  ExpansionContext seq_ctx, par_ctx;
  sequential.RunTimed(seq_ctx, request, speeds);
  parallel.RunTimed(par_ctx, request, speeds);
  ExpectTimedIdentical(net, seq_ctx, par_ctx, true, true);
}

TEST(FrontierEngineTest, WrapperFunctionsMatchEngineResults) {
  RoadNetwork net = MakeGridNetwork(5, 5, 300.0);
  SpeedFn speeds = HashSpeeds(5);
  auto hits = ExpandFrom(net, 2, 400.0, speeds);
  ASSERT_FALSE(hits.empty());
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i - 1].arrival_seconds, hits[i].arrival_seconds);
  }
  // Reached set must match an unbounded label computation truncated at
  // the budget.
  auto labels = ShortestTravelTimes(net, 2, speeds);
  size_t in_budget = 0;
  for (double l : labels) in_budget += (l <= 400.0) ? 1 : 0;
  EXPECT_EQ(hits.size(), in_budget);
}

// --- SQMB / MQMB: parallel interior == sequential ---------------------------

TEST(BoundingSearchTest, SqmbParallelInteriorBitIdentical) {
  auto& stack = GetSharedStack();
  const RoadNetwork& net = stack.engine->network();
  const ConIndex& con = stack.engine->con_index();
  ThreadPool pool(3);
  BoundingSearchOptions parallel_opt;
  parallel_opt.runtime = ParallelRuntime(pool, 4);
  SearchMetrics metrics;
  parallel_opt.metrics = &metrics;

  for (int64_t tod : {HMS(8), HMS(11), HMS(17)}) {
    for (int64_t duration : {300, 900, 1800}) {
      std::vector<SegmentId> starts = LocationSegmentSet(net, 0);
      auto seq = SqmbSearchSet(net, con, starts, tod, duration);
      auto par = SqmbSearchSet(net, con, starts, tod, duration, parallel_opt);
      ASSERT_TRUE(seq.ok() && par.ok());
      EXPECT_EQ(seq->max_region, par->max_region);
      EXPECT_EQ(seq->min_region, par->min_region);
      EXPECT_EQ(seq->boundary, par->boundary);
      EXPECT_EQ(seq->start_segments, par->start_segments);
    }
  }
  EXPECT_GT(metrics.segments_expanded, 0u);
}

TEST(BoundingSearchTest, MqmbParallelInteriorBitIdentical) {
  auto& stack = GetSharedStack();
  const RoadNetwork& net = stack.engine->network();
  const ConIndex& con = stack.engine->con_index();
  const SpeedProfile& profile = stack.engine->speed_profile();
  ThreadPool pool(3);
  BoundingSearchOptions parallel_opt;
  parallel_opt.runtime = ParallelRuntime(pool, 4);

  std::vector<SegmentId> starts{0, SegmentId(net.NumSegments() / 2),
                                SegmentId(net.NumSegments() - 1)};
  for (int64_t tod : {HMS(9), HMS(14)}) {
    for (int64_t duration : {600, 1500}) {
      auto seq = MqmbSearch(net, con, profile, starts, tod, duration);
      auto par =
          MqmbSearch(net, con, profile, starts, tod, duration, parallel_opt);
      ASSERT_TRUE(seq.ok() && par.ok());
      EXPECT_EQ(seq->max_region, par->max_region);
      EXPECT_EQ(seq->min_region, par->min_region);
      EXPECT_EQ(seq->boundary, par->boundary);
    }
  }
}

TEST(BoundingSearchTest, ExecutorInteriorWorkersMatchSequential) {
  auto& stack = GetSharedStack();
  auto sequential = stack.engine->MakeExecutor({.num_threads = 1});
  auto parallel = stack.engine->MakeExecutor(
      {.num_threads = 1, .interior_workers = 4});

  MQuery q;
  q.locations = {stack.dataset.center,
                 {stack.dataset.center.x + 1500.0, stack.dataset.center.y},
                 {stack.dataset.center.x, stack.dataset.center.y - 1800.0}};
  q.start_tod = HMS(11);
  q.duration = 1200;
  q.prob = 0.2;
  auto plan = stack.engine->planner().PlanMQuery(q, QueryStrategy::kIndexed);
  ASSERT_TRUE(plan.ok());

  auto seq = sequential->Execute(*plan);
  auto par = parallel->Execute(*plan);
  ASSERT_TRUE(seq.ok() && par.ok());
  EXPECT_EQ(seq->segments, par->segments);
  EXPECT_EQ(seq->total_length_m, par->total_length_m);
  EXPECT_EQ(seq->stats.segments_expanded, par->stats.segments_expanded);
  EXPECT_EQ(seq->stats.parallel_rounds, 0u);
  EXPECT_GT(seq->stats.segments_expanded, 0u);

  QueryExecutor::FrontDoorStats fds = parallel->front_door_stats();
  EXPECT_GT(fds.ctx_pool_acquires, 0u);
}

// --- Con-Index: parallel builds are deterministic ---------------------------

TEST(ConIndexBuildTest, ConcurrentBuildersProduceSequentialLists) {
  auto& stack = GetSharedStack();
  const RoadNetwork& net = stack.engine->network();
  const SpeedProfile& profile = stack.engine->speed_profile();
  ConIndexOptions copt;
  copt.delta_t_seconds = 300;

  auto parallel_index = ConIndex::Create(net, profile, copt);
  auto sequential_index = ConIndex::Create(net, profile, copt);
  ASSERT_TRUE(parallel_index.ok() && sequential_index.ok());
  const SlotId slot = 10;
  const int64_t tod = static_cast<int64_t>(slot) * profile.slot_seconds();

  // Parallel: 4 racing builders over interleaved segment sets (deliberate
  // overlap at the chunk edges so first-writer-wins races actually occur).
  {
    ThreadPool build_pool(4);
    const size_t n = net.NumSegments();
    for (int worker = 0; worker < 4; ++worker) {
      build_pool.Submit([&, worker] {
        std::vector<SegmentId> mine;
        for (SegmentId s = 0; s < n; ++s) {
          if (s % 3 == static_cast<SegmentId>(worker % 3)) mine.push_back(s);
        }
        (**parallel_index).PrewarmSlot(slot, mine);
      });
    }
    build_pool.Wait();
  }
  // Every table must exist (worker coverage) and match the lazily,
  // sequentially materialized reference bit for bit.
  for (SegmentId s = 0; s < net.NumSegments(); ++s) {
    ASSERT_EQ((**parallel_index).Far(s, tod), (**sequential_index).Far(s, tod))
        << "Far list differs at segment " << s;
    ASSERT_EQ((**parallel_index).Near(s, tod),
              (**sequential_index).Near(s, tod))
        << "Near list differs at segment " << s;
  }
  EXPECT_GE((**parallel_index).MaterializedTables(), net.NumSegments());
}

// --- Ingest-driven prewarm --------------------------------------------------

TEST(LivePrewarmTest, PrewarmRebuildsExactlyTheInvalidatedTables) {
  auto& stack = GetSharedStack();
  const RoadNetwork& net = stack.engine->network();
  const SpeedProfile& profile = stack.engine->speed_profile();
  ConIndexOptions copt;
  copt.delta_t_seconds = 300;
  auto base_index = ConIndex::Create(net, profile, copt);
  ASSERT_TRUE(base_index.ok());

  // The busy segment with the LARGEST slot minimum: lowering its cell min
  // slightly stays above the level fallback minimum (held by some slower
  // segment), so the change is cell-only — a *partial* invalidation, the
  // case prewarm consumes.
  const int64_t tod = HMS(11);
  SegmentId seg = kInvalidSegment;
  double best_min = 0.0;
  for (SegmentId s = 0; s < net.NumSegments(); ++s) {
    if (!profile.HasObservations(s, tod)) continue;
    double m = profile.MinSpeed(s, tod);
    if (m > best_min) {
      best_min = m;
      seg = s;
    }
  }
  ASSERT_NE(seg, kInvalidSegment);
  ASSERT_GT(best_min, 1.0);
  // Materialize some base tables so the partial invalidation has
  // something to knock out (seg's own table is always affected).
  (**base_index).Far(seg, tod);
  (**base_index).Near(seg, tod);
  for (SegmentId s = 0; s < std::min<SegmentId>(32, net.NumSegments()); ++s) {
    (**base_index).Far(s, tod);
  }

  EpochManager epochs;
  LiveProfileOptions lopt;
  lopt.prewarm = true;
  lopt.prewarm_threads = 2;
  LiveProfileManager live(epochs, profile, **base_index, lopt);

  float v = static_cast<float>(best_min - 0.01);
  CoalescedUpdate update{seg, tod, v, v, v, 1};
  uint64_t version = live.Publish({&update, 1});
  EXPECT_EQ(version, 1u);

  live.WaitForPrewarm();
  LiveProfileManager::Stats stats = live.stats();
  ASSERT_GT(stats.prewarm_tasks, 0u)
      << "partial invalidation scheduled no prewarm";
  EXPECT_GT(stats.prewarm_tables_built, 0u);

  // The prewarmed tables must be bit-identical to a cold lazy build over
  // the same (published) profile.
  {
    SnapshotRef ref = live.Acquire();
    auto oracle = ConIndex::Create(net, ref.profile(), copt);
    ASSERT_TRUE(oracle.ok());
    EXPECT_EQ(ref.con_index().Far(seg, tod), (**oracle).Far(seg, tod));
    EXPECT_EQ(ref.con_index().Near(seg, tod), (**oracle).Near(seg, tod));
  }

  // A second partial invalidation of the same slot: the new clone's
  // fresh bucket discards the tables the first generation built (the
  // prewarmed ones included), so the work list must cover them again —
  // not just the newly changed segment.
  const uint64_t built_after_first = stats.prewarm_tables_built;
  float v2 = static_cast<float>(best_min - 0.02);
  CoalescedUpdate update2{seg, tod, v2, v2, v2, 1};
  EXPECT_EQ(live.Publish({&update2, 1}), 2u);
  live.WaitForPrewarm();
  LiveProfileManager::Stats stats2 = live.stats();
  EXPECT_EQ(stats2.slots_partially_invalidated, 2u);
  EXPECT_GT(stats2.prewarm_tables_built, built_after_first)
      << "repeated partial invalidation must re-prewarm the previous "
         "generation's own tables";
  SnapshotRef ref2 = live.Acquire();
  auto oracle2 = ConIndex::Create(net, ref2.profile(), copt);
  ASSERT_TRUE(oracle2.ok());
  EXPECT_EQ(ref2.con_index().Far(seg, tod), (**oracle2).Far(seg, tod));
  EXPECT_EQ(ref2.con_index().Near(seg, tod), (**oracle2).Near(seg, tod));
}

// --- Concurrent query x ingest over the parallel interior -------------------

TEST(SearchConcurrencyTest, QueryIngestHammerWithParallelInterior) {
  auto& base = GetSharedStack();
  EngineOptions opt;
  opt.work_dir = testing_util::MakeTempDir("search_hammer");
  opt.delta_t_seconds = 300;
  opt.query_threads = 2;
  opt.interior_workers = 3;
  opt.live_ingestion = true;
  opt.live_batch_window_ms = 2;
  opt.live_prewarm = true;
  opt.result_cache_entries = 128;
  auto engine_or =
      ReachabilityEngine::Build(base.dataset.network, *base.dataset.store, opt);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  ReachabilityEngine& engine = **engine_or;

  SQuery q{base.dataset.center, HMS(11), 900, 0.2};
  auto plan = engine.planner().PlanSQuery(q);
  ASSERT_TRUE(plan.ok());
  auto reference = engine.executor().Execute(*plan);
  ASSERT_TRUE(reference.ok());

  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};
  std::thread feeder([&] {
    uint64_t i = 0;
    while (!stop.load()) {
      SpeedObservation obs;
      obs.segment = static_cast<SegmentId>(
          i % base.dataset.network.NumSegments());
      obs.time_of_day_sec = HMS(11, static_cast<int>(i % 60));
      obs.speed_mps = 3.0 + static_cast<double>(i % 14);
      engine.ApplySpeedObservation(obs.segment, obs.time_of_day_sec,
                                   obs.speed_mps);
      ++i;
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> queriers;
  for (int t = 0; t < 3; ++t) {
    queriers.emplace_back([&] {
      for (int i = 0; i < 30 && ok.load(); ++i) {
        auto result = engine.executor().Execute(*plan);
        if (!result.ok() || result->segments.empty()) ok.store(false);
      }
    });
  }
  for (auto& t : queriers) t.join();
  stop.store(true);
  feeder.join();
  EXPECT_TRUE(ok.load());

  // Same version => bit-identical region (determinism under live load).
  auto again = engine.executor().Execute(*plan);
  ASSERT_TRUE(again.ok());
  if (again->stats.snapshot_version == reference->stats.snapshot_version) {
    EXPECT_EQ(again->segments, reference->segments);
  }
}

}  // namespace
}  // namespace strr
