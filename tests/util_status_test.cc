#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace strr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing key");
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, PredicateHelpers) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
}

TEST(StatusTest, PredicatesAreExclusive) {
  Status s = Status::IoError("x");
  EXPECT_FALSE(s.IsNotFound());
  EXPECT_FALSE(s.IsCorruption());
  EXPECT_FALSE(s.ok());
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Corruption("bad page");
  Status copy = s;
  EXPECT_EQ(copy.code(), StatusCode::kCorruption);
  EXPECT_EQ(copy.message(), "bad page");
  EXPECT_EQ(s.code(), StatusCode::kCorruption);  // source intact
}

TEST(StatusTest, CopyAssignOverOk) {
  Status ok;
  Status err = Status::Internal("boom");
  ok = err;
  EXPECT_TRUE(ok.IsInternal());
  err = Status::OK();
  EXPECT_TRUE(err.ok());
  EXPECT_TRUE(ok.IsInternal());  // deep copy, not aliasing
}

TEST(StatusTest, MoveTransfersState) {
  Status s = Status::OutOfRange("past end");
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsOutOfRange());
  EXPECT_EQ(moved.message(), "past end");
}

TEST(StatusTest, SelfAssignmentSafe) {
  Status s = Status::NotFound("x");
  Status& alias = s;
  s = alias;
  EXPECT_TRUE(s.IsNotFound());
}

TEST(StatusTest, CodeToStringNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IOError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::IoError("disk gone"); };
  auto outer = [&]() -> Status {
    STRR_RETURN_IF_ERROR(inner());
    return Status::Internal("unreachable");
  };
  Status s = outer();
  EXPECT_TRUE(s.IsIoError());
}

TEST(StatusTest, ReturnIfErrorPassesOk) {
  auto inner = []() { return Status::OK(); };
  auto outer = [&]() -> Status {
    STRR_RETURN_IF_ERROR(inner());
    return Status::Internal("reached");
  };
  EXPECT_TRUE(outer().IsInternal());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(StatusOrTest, ValueOrFallback) {
  StatusOr<int> good(7);
  StatusOr<int> bad(Status::Internal("x"));
  EXPECT_EQ(good.value_or(-1), 7);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(StatusOrTest, AssignOrReturnMacroPropagates) {
  auto fail = []() -> StatusOr<int> { return Status::OutOfRange("x"); };
  auto outer = [&]() -> Status {
    STRR_ASSIGN_OR_RETURN(int v, fail());
    (void)v;
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsOutOfRange());
}

TEST(StatusOrTest, AssignOrReturnMacroAssigns) {
  auto make = []() -> StatusOr<int> { return 13; };
  auto outer = [&]() -> StatusOr<int> {
    STRR_ASSIGN_OR_RETURN(int v, make());
    return v * 2;
  };
  auto r = outer();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 26);
}

}  // namespace
}  // namespace strr
