// Sharded serving tier: ShardMap partition invariants, subnetwork
// extraction, the shared result cache (codec + LRU + version isolation),
// engine-global quota CAS, and — the load-bearing property — bit-identity
// of the sharded scatter-gather path against the unsharded executor
// oracle across shard counts, strategies and live ingestion.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/reachability_engine.h"
#include "core/tenant_registry.h"
#include "roadnet/subnetwork.h"
#include "shard/shard_coordinator.h"
#include "shard/shard_map.h"
#include "shard/shared_result_cache.h"
#include "tests/test_util.h"
#include "traj/fleet_simulator.h"

namespace strr {
namespace {

using testing_util::GetSharedStack;
using testing_util::MakeGridNetwork;
using testing_util::MakeChainNetwork;
using testing_util::MakeTempDir;

// --- ShardMap ----------------------------------------------------------------

TEST(ShardMapTest, PartitionCoversEverySegmentExactlyOnce) {
  RoadNetwork net = MakeGridNetwork(12, 12, 350.0);
  ShardMap map(net, 4, /*cell_meters=*/700.0);
  ASSERT_EQ(map.num_shards(), 4);
  ASSERT_EQ(map.owners().size(), net.NumSegments());

  std::vector<int> seen(net.NumSegments(), 0);
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_FALSE(map.shard_segments(s).empty()) << "empty shard " << s;
    EXPECT_TRUE(std::is_sorted(map.shard_segments(s).begin(),
                               map.shard_segments(s).end()));
    for (SegmentId seg : map.shard_segments(s)) {
      EXPECT_EQ(map.owner(seg), s);
      ++seen[seg];
    }
  }
  for (SegmentId seg = 0; seg < net.NumSegments(); ++seg) {
    EXPECT_EQ(seen[seg], 1) << "segment " << seg;
  }
}

TEST(ShardMapTest, TwinsShareAShard) {
  RoadNetwork net = MakeGridNetwork(10, 10, 400.0);
  ShardMap map(net, 4, /*cell_meters=*/800.0);
  for (SegmentId seg = 0; seg < net.NumSegments(); ++seg) {
    SegmentId twin = net.segment(seg).reverse_id;
    if (twin == kInvalidSegment) continue;
    EXPECT_EQ(map.owner(seg), map.owner(twin))
        << "twin pair " << seg << "/" << twin << " split across shards";
  }
}

TEST(ShardMapTest, DeterministicAcrossRebuilds) {
  RoadNetwork net = MakeGridNetwork(9, 7, 450.0);
  ShardMap a(net, 3, 900.0);
  ShardMap b(net, 3, 900.0);
  ASSERT_EQ(a.owners().size(), b.owners().size());
  for (size_t i = 0; i < a.owners().size(); ++i) {
    EXPECT_EQ(a.owners()[i], b.owners()[i]);
  }
}

TEST(ShardMapTest, BoundaryAndHaloAreConsistent) {
  RoadNetwork net = MakeGridNetwork(10, 10, 400.0);
  ShardMap map(net, 4, /*cell_meters=*/800.0);
  for (uint32_t s = 0; s < 4; ++s) {
    // Boundary segments are owned by s and genuinely touch another shard.
    for (SegmentId seg : map.boundary(s)) {
      EXPECT_EQ(map.owner(seg), s);
      bool touches_other = false;
      for (SegmentId n : net.NeighborsOf(seg)) {
        if (map.owner(n) != s) touches_other = true;
      }
      SegmentId twin = net.segment(seg).reverse_id;
      if (twin != kInvalidSegment && map.owner(twin) != s) {
        touches_other = true;
      }
      EXPECT_TRUE(touches_other) << "boundary segment " << seg
                                 << " has no foreign neighbor";
    }
    // Halo segments are foreign-owned and adjacent to the shard.
    for (SegmentId seg : map.halo(s)) {
      EXPECT_NE(map.owner(seg), s);
    }
    EXPECT_TRUE(std::is_sorted(map.halo(s).begin(), map.halo(s).end()));
    EXPECT_EQ(std::adjacent_find(map.halo(s).begin(), map.halo(s).end()),
              map.halo(s).end());
  }
  EXPECT_GT(map.boundary_fraction(), 0.0);
  EXPECT_LT(map.boundary_fraction(), 1.0);
}

TEST(ShardMapTest, ClampsShardCountToSegments) {
  RoadNetwork net = MakeChainNetwork(3);
  ShardMap map(net, 16);
  EXPECT_LE(map.num_shards(), 3);
  EXPECT_GE(map.num_shards(), 1);
  for (SegmentId seg = 0; seg < net.NumSegments(); ++seg) {
    EXPECT_LT(map.owner(seg), static_cast<uint32_t>(map.num_shards()));
  }
}

// --- Subnetwork extraction ---------------------------------------------------

TEST(SubnetworkTest, InducedSubgraphRoundTrips) {
  RoadNetwork net = MakeGridNetwork(8, 8, 400.0);
  ShardMap map(net, 2, /*cell_meters=*/800.0);

  // Shard 0's owned segments plus its halo: the per-partition view the
  // future process-per-shard transport would serve from.
  std::vector<SegmentId> subset = map.shard_segments(0);
  subset.insert(subset.end(), map.halo(0).begin(), map.halo(0).end());
  std::sort(subset.begin(), subset.end());

  auto sub = ExtractSubnetwork(net, subset);
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  ASSERT_EQ(sub->network.NumSegments(), subset.size());
  ASSERT_EQ(sub->to_global.size(), subset.size());

  std::set<SegmentId> selected(subset.begin(), subset.end());
  for (SegmentId local = 0; local < sub->network.NumSegments(); ++local) {
    SegmentId global = sub->to_global[local];
    ASSERT_TRUE(selected.count(global));
    EXPECT_EQ(sub->to_local.at(global), local);
    const RoadSegment& ls = sub->network.segment(local);
    const RoadSegment& gs = net.segment(global);
    EXPECT_DOUBLE_EQ(ls.length, gs.length);
    EXPECT_EQ(ls.level, gs.level);
    EXPECT_EQ(sub->node_to_global[ls.from_node], gs.from_node);
    EXPECT_EQ(sub->node_to_global[ls.to_node], gs.to_node);
    // Twin links survive exactly when both directions were selected.
    if (gs.reverse_id != kInvalidSegment && selected.count(gs.reverse_id)) {
      ASSERT_NE(ls.reverse_id, kInvalidSegment);
      EXPECT_EQ(sub->to_global[ls.reverse_id], gs.reverse_id);
    } else {
      EXPECT_EQ(ls.reverse_id, kInvalidSegment);
    }
  }
}

// --- RegionResult codec + shared cache ---------------------------------------

RegionResult MakeDenseResult() {
  RegionResult r;
  r.segments = {2, 3, 5, 8, 13, 21, 34};
  r.total_length_m = 1234.5;
  r.stats.wall_ms = 1.25;
  r.stats.sum_wall_ms = 2.5;
  r.stats.time_lists_read = 17;
  r.stats.segments_verified = 29;
  r.stats.segments_expanded = 31;
  r.stats.heap_pops = 37;
  r.stats.parallel_rounds = 3;
  r.stats.snapshot_version = 41;
  r.stats.io.disk_page_reads = 43;
  r.stats.io.cache_hits = 47;
  r.stats.io.cache_misses = 53;
  r.stats.io.evictions = 57;
  r.stats.max_region_segments = 59;
  r.stats.min_region_segments = 6;
  r.stats.boundary_segments = 11;
  return r;
}

TEST(ResultCodecTest, RoundTripsEveryField) {
  RegionResult r = MakeDenseResult();
  std::string bytes = EncodeRegionResult(r);
  auto back = DecodeRegionResult(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->segments, r.segments);
  EXPECT_DOUBLE_EQ(back->total_length_m, r.total_length_m);
  EXPECT_DOUBLE_EQ(back->stats.wall_ms, r.stats.wall_ms);
  EXPECT_DOUBLE_EQ(back->stats.sum_wall_ms, r.stats.sum_wall_ms);
  EXPECT_EQ(back->stats.time_lists_read, r.stats.time_lists_read);
  EXPECT_EQ(back->stats.segments_verified, r.stats.segments_verified);
  EXPECT_EQ(back->stats.segments_expanded, r.stats.segments_expanded);
  EXPECT_EQ(back->stats.heap_pops, r.stats.heap_pops);
  EXPECT_EQ(back->stats.parallel_rounds, r.stats.parallel_rounds);
  EXPECT_EQ(back->stats.snapshot_version, r.stats.snapshot_version);
  EXPECT_EQ(back->stats.io.disk_page_reads, r.stats.io.disk_page_reads);
  EXPECT_EQ(back->stats.io.cache_hits, r.stats.io.cache_hits);
  EXPECT_EQ(back->stats.io.cache_misses, r.stats.io.cache_misses);
  EXPECT_EQ(back->stats.io.evictions, r.stats.io.evictions);
  EXPECT_EQ(back->stats.max_region_segments, r.stats.max_region_segments);
  EXPECT_EQ(back->stats.min_region_segments, r.stats.min_region_segments);
  EXPECT_EQ(back->stats.boundary_segments, r.stats.boundary_segments);
}

TEST(ResultCodecTest, RejectsTruncationAndTrailingBytes) {
  std::string bytes = EncodeRegionResult(MakeDenseResult());
  for (size_t cut : {size_t{0}, size_t{1}, bytes.size() / 2,
                     bytes.size() - 1}) {
    auto r = DecodeRegionResult(bytes.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "accepted a " << cut << "-byte prefix";
  }
  auto r = DecodeRegionResult(bytes + "x");
  EXPECT_FALSE(r.ok()) << "accepted trailing bytes";
}

TEST(SharedResultCacheTest, HitPromoteEvictLru) {
  SharedResultCache cache(/*capacity=*/2, /*lock_shards=*/1);
  RegionResult r = MakeDenseResult();
  cache.Insert("a", r);
  cache.Insert("b", r);
  ASSERT_TRUE(cache.Lookup("a").ok());  // promotes a over b
  cache.Insert("c", r);                 // evicts b (LRU)
  EXPECT_TRUE(cache.Lookup("a").ok());
  EXPECT_FALSE(cache.Lookup("b").ok());
  EXPECT_TRUE(cache.Lookup("c").ok());

  SharedResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(SharedResultCacheTest, SnapshotVersionIsPartOfTheKey) {
  SharedResultCache cache(8, 1);
  std::string canonical = "plan:deadbeef";
  std::string k1 = SharedResultCache::MakeKey(canonical, 1);
  std::string k2 = SharedResultCache::MakeKey(canonical, 2);
  ASSERT_NE(k1, k2);

  RegionResult r1 = MakeDenseResult();
  r1.stats.snapshot_version = 1;
  cache.Insert(k1, r1);
  EXPECT_FALSE(cache.Lookup(k2).ok())
      << "a publish must make new-version queries miss, not hit stale";
  auto hit = cache.Lookup(k1);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->stats.snapshot_version, 1u);
}

TEST(SharedResultCacheTest, ZeroCapacityCachesNothing) {
  SharedResultCache cache(0);
  cache.Insert("a", MakeDenseResult());
  EXPECT_FALSE(cache.Lookup("a").ok());
  EXPECT_EQ(cache.stats().entries, 0u);
}

// --- Engine-global quota CAS -------------------------------------------------

TEST(ShardQuotaTest, ConcurrentClaimsNeverExceedQuota) {
  TenantRegistry registry;
  constexpr TenantId kTenant = 9;
  constexpr size_t kQuota = 3;
  constexpr int kThreads = 8;
  constexpr int kAttemptsPerThread = 500;

  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::atomic<int> admitted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAttemptsPerThread; ++i) {
        if (!registry.TryClaimInflight(kTenant, kQuota)) continue;
        int now = concurrent.fetch_add(1) + 1;
        int prev = peak.load();
        while (now > prev && !peak.compare_exchange_weak(prev, now)) {
        }
        admitted.fetch_add(1);
        std::this_thread::yield();
        concurrent.fetch_sub(1);
        registry.ReleaseClaim(kTenant);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_GT(admitted.load(), 0);
  EXPECT_LE(peak.load(), static_cast<int>(kQuota))
      << "CAS quota admitted more concurrent claims than the quota";
  EXPECT_EQ(registry.counters(kTenant).inflight, 0u);
}

// --- Sharded vs unsharded oracle --------------------------------------------

void ExpectBitIdentical(const RegionResult& sharded,
                        const RegionResult& oracle) {
  EXPECT_EQ(sharded.segments, oracle.segments);
  EXPECT_DOUBLE_EQ(sharded.total_length_m, oracle.total_length_m);
  // Deterministic work counters must match exactly; wall/io/rounds are
  // scheduling-dependent by design and excluded.
  EXPECT_EQ(sharded.stats.segments_verified, oracle.stats.segments_verified);
  EXPECT_EQ(sharded.stats.time_lists_read, oracle.stats.time_lists_read);
  EXPECT_EQ(sharded.stats.segments_expanded, oracle.stats.segments_expanded);
  EXPECT_EQ(sharded.stats.heap_pops, oracle.stats.heap_pops);
  EXPECT_EQ(sharded.stats.max_region_segments,
            oracle.stats.max_region_segments);
  EXPECT_EQ(sharded.stats.min_region_segments,
            oracle.stats.min_region_segments);
  EXPECT_EQ(sharded.stats.boundary_segments, oracle.stats.boundary_segments);
}

ShardingOptions TestShardingOptions(int num_shards) {
  ShardingOptions opt;
  opt.num_shards = num_shards;
  opt.shard_query_threads = 2;
  opt.slice_threads = 2;
  opt.cell_meters = 900.0;
  // Force the scatter branches even on the small test city's frontiers.
  opt.min_scatter_frontier = 2;
  opt.min_scatter_ring = 2;
  return opt;
}

TEST(ShardOracleTest, SQueryBitIdenticalAcrossShardCounts) {
  auto& stack = GetSharedStack();
  ReachabilityEngine& engine = *stack.engine;
  const XyPoint c = stack.dataset.center;

  std::vector<SQuery> queries = {
      {c, HMS(8), 600, 0.1},
      {c, HMS(11), 300, 0.2},
      {c, HMS(11), 1200, 0.1},
      {c, HMS(17), 900, 0.3},
      {{c.x + 1200.0, c.y - 900.0}, HMS(11), 600, 0.2},
  };

  for (int num_shards : {2, 4}) {
    auto coordinator =
        engine.MakeShardCoordinator(TestShardingOptions(num_shards));
    ASSERT_EQ(coordinator->num_shards(), num_shards);
    uint64_t executed = 0;
    uint64_t scattered_rounds = 0;
    bool any_nonempty = false;
    for (const SQuery& q : queries) {
      auto plan = engine.planner().PlanSQuery(q);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      auto oracle = engine.executor().Execute(*plan);
      ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
      auto sharded = coordinator->Execute(*plan);
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      any_nonempty |= !sharded->segments.empty();
      scattered_rounds += sharded->stats.parallel_rounds;
      ExpectBitIdentical(*sharded, *oracle);
      ++executed;
    }
    EXPECT_TRUE(any_nonempty) << "every sweep query mined an empty region";
    EXPECT_GT(scattered_rounds, 0u)
        << "no cone round ever took the cross-shard scatter branch — the "
           "sweep would be vacuous";
    EXPECT_GT(coordinator->stats().cross_shard, 0u)
        << "no query's region ever left its home shard";
    EXPECT_EQ(coordinator->stats().routed, executed);
  }
}

TEST(ShardOracleTest, ExhaustiveStrategyRoutesWholeAndMatches) {
  auto& stack = GetSharedStack();
  ReachabilityEngine& engine = *stack.engine;
  auto plan = engine.planner().PlanSQuery({stack.dataset.center, HMS(11),
                                           600, 0.2},
                                          QueryStrategy::kExhaustive);
  ASSERT_TRUE(plan.ok());
  auto coordinator = engine.MakeShardCoordinator(TestShardingOptions(2));
  auto oracle = engine.executor().Execute(*plan);
  auto sharded = coordinator->Execute(*plan);
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE(sharded.ok());
  ExpectBitIdentical(*sharded, *oracle);
}

TEST(ShardOracleTest, MQueryLegsScatterAcrossShardsAndMatch) {
  auto& stack = GetSharedStack();
  ReachabilityEngine& engine = *stack.engine;
  const XyPoint c = stack.dataset.center;
  MQuery m;
  // Spread wide so the per-location legs land on different shards.
  m.locations = {{c.x - 1600.0, c.y - 1000.0},
                 c,
                 {c.x + 1600.0, c.y + 1000.0}};
  m.start_tod = HMS(11);
  m.duration = 600;
  m.prob = 0.2;

  for (int num_shards : {2, 4}) {
    auto coordinator =
        engine.MakeShardCoordinator(TestShardingOptions(num_shards));
    for (QueryStrategy strategy :
         {QueryStrategy::kRepeatedS, QueryStrategy::kIndexed}) {
      auto plan = engine.planner().PlanMQuery(m, strategy);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      auto oracle = engine.executor().Execute(*plan);
      ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
      auto sharded = coordinator->Execute(*plan);
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      ASSERT_FALSE(sharded->segments.empty());
      ExpectBitIdentical(*sharded, *oracle);
    }
    // The sweep only demonstrates scatter if the legs genuinely live on
    // more than one shard.
    auto plan = engine.planner().PlanMQuery(m, QueryStrategy::kRepeatedS);
    ASSERT_TRUE(plan.ok());
    std::set<uint32_t> owners;
    for (const auto& starts : plan->location_starts) {
      owners.insert(coordinator->map().owner(starts[0]));
    }
    EXPECT_GT(owners.size(), 1u)
        << num_shards << "-shard map put every m-query leg on one shard";
  }
}

TEST(ShardOracleTest, SharedCacheHitsAcrossRepeatsAndTenants) {
  auto& stack = GetSharedStack();
  ReachabilityEngine& engine = *stack.engine;
  ShardingOptions opt = TestShardingOptions(2);
  opt.shared_cache_entries = 64;
  auto coordinator = engine.MakeShardCoordinator(opt);

  auto plan = engine.planner().PlanSQuery({stack.dataset.center, HMS(11),
                                           600, 0.2});
  ASSERT_TRUE(plan.ok());
  auto first = coordinator->Execute(*plan);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->stats.cache_hit);

  auto second = coordinator->Execute(*plan);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->stats.cache_hit);
  EXPECT_EQ(second->segments, first->segments);

  // The shared tier is tenant-agnostic by design: identical plans from
  // different tenants reuse one entry.
  QueryPlan other_tenant = *plan;
  other_tenant.tenant = 7;
  auto third = coordinator->Execute(other_tenant);
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->stats.cache_hit);
  EXPECT_EQ(third->segments, first->segments);

  SharedResultCache::Stats cache = coordinator->stats().cache;
  EXPECT_EQ(cache.hits, 2u);
  EXPECT_EQ(cache.insertions, 1u);
}

// --- Engine facade integration ----------------------------------------------

TEST(ShardEngineTest, FacadeRoutesThroughCoordinatorBitIdentically) {
  auto& stack = GetSharedStack();
  EngineOptions opt;
  opt.work_dir = MakeTempDir("shard_engine");
  opt.delta_t_seconds = 300;
  opt.cache_pages = 4096;
  opt.sharding = TestShardingOptions(2);
  auto sharded_engine = ReachabilityEngine::Build(stack.dataset.network,
                                                  *stack.dataset.store, opt);
  ASSERT_TRUE(sharded_engine.ok()) << sharded_engine.status().ToString();
  ReachabilityEngine& engine = **sharded_engine;
  ASSERT_NE(engine.shard_coordinator(), nullptr);

  SQuery q{stack.dataset.center, HMS(11), 600, 0.2};
  auto sharded = engine.SQueryIndexed(q);
  auto oracle = stack.engine->SQueryIndexed(q);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(sharded->segments, oracle->segments);
  EXPECT_DOUBLE_EQ(sharded->total_length_m, oracle->total_length_m);
  EXPECT_GE(engine.shard_coordinator()->stats().routed, 1u);
}

TEST(ShardEngineTest, QuotaShedsThroughTheSharedRegistry) {
  auto& stack = GetSharedStack();
  EngineOptions opt;
  opt.work_dir = MakeTempDir("shard_quota");
  opt.delta_t_seconds = 300;
  opt.cache_pages = 4096;
  opt.tenant_fairness = true;
  opt.sharding = TestShardingOptions(2);
  auto built = ReachabilityEngine::Build(stack.dataset.network,
                                         *stack.dataset.store, opt);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ReachabilityEngine& engine = **built;
  ASSERT_NE(engine.tenant_registry(), nullptr);

  constexpr TenantId kTenant = 5;
  TenantConfig config;
  config.max_inflight = 1;
  engine.tenant_registry()->Configure(kTenant, config);

  auto plan = engine.planner().PlanSQuery({stack.dataset.center, HMS(11),
                                           600, 0.2},
                                          QueryStrategy::kIndexed, kTenant);
  ASSERT_TRUE(plan.ok());

  // Fill the tenant's one slot out-of-band: the coordinator's CAS claim
  // must now fail engine-globally, on whichever shard would serve it.
  engine.tenant_registry()->RecordAdmission(kTenant);
  auto shed = engine.shard_coordinator()->Execute(*plan);
  EXPECT_TRUE(shed.status().IsResourceExhausted())
      << shed.status().ToString();
  EXPECT_EQ(engine.shard_coordinator()->stats().shed, 1u);
  EXPECT_EQ(engine.tenant_registry()->counters(kTenant).shed, 1u);

  engine.tenant_registry()->RecordRelease(kTenant);
  auto served = engine.shard_coordinator()->Execute(*plan);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_EQ(engine.tenant_registry()->counters(kTenant).inflight, 0u);
}

// --- Sharding x live ingestion ----------------------------------------------

TEST(ShardLiveTest, HammerKeepsSnapshotsConsistentAcrossShards) {
  auto& stack = GetSharedStack();
  EngineOptions opt;
  opt.work_dir = MakeTempDir("shard_live");
  opt.delta_t_seconds = 300;
  opt.cache_pages = 4096;
  opt.live_ingestion = true;
  opt.live_batch_window_ms = 1;
  opt.sharding = TestShardingOptions(2);
  auto built = ReachabilityEngine::Build(stack.dataset.network,
                                         *stack.dataset.store, opt);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ReachabilityEngine& engine = **built;
  ASSERT_NE(engine.shard_coordinator(), nullptr);
  ASSERT_TRUE(engine.shard_coordinator()->has_ingestors())
      << "live mode without durability must fan observations per shard";

  auto plan = engine.planner().PlanSQuery({stack.dataset.center, HMS(9),
                                           600, 0.2});
  ASSERT_TRUE(plan.ok());
  const std::vector<SegmentId> starts = plan->location_starts[0];

  constexpr int kQueryThreads = 3;
  constexpr int kQueriesPerThread = 25;
  std::mutex mu;
  std::map<uint64_t, std::vector<SegmentId>> region_by_version;
  std::atomic<bool> stop_ingest{false};
  std::atomic<int> mismatches{0};
  std::atomic<size_t> offered{0};

  std::thread ingester([&] {
    LiveObservationOptions src_opt;
    src_opt.seed = 77;
    src_opt.slow_traversal_prob = 0.5;
    LiveObservationSource source(engine.network(), src_opt);
    size_t i = 0;
    while (!stop_ingest.load()) {
      SegmentId target = starts[i % starts.size()];
      if (engine.OfferObservation(source.NextAt(target, HMS(9) + (i % 600)))) {
        offered.fetch_add(1);
      }
      if (engine.OfferObservation(source.Next(HMS(9 + i % 3)))) {
        offered.fetch_add(1);
      }
      ++i;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> queriers;
  for (int t = 0; t < kQueryThreads; ++t) {
    queriers.emplace_back([&] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        auto result = engine.shard_coordinator()->Execute(*plan);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        std::lock_guard<std::mutex> lock(mu);
        auto [it, inserted] = region_by_version.try_emplace(
            result->stats.snapshot_version, result->segments);
        if (!inserted && it->second != result->segments) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : queriers) t.join();
  stop_ingest.store(true);
  ingester.join();

  EXPECT_EQ(mismatches.load(), 0)
      << "same snapshot version must always produce the same region";
  EXPECT_GT(offered.load(), 0u) << "observations routed to shard ingestors";
  ASSERT_NE(engine.live_manager(), nullptr);
  for (const auto& [version, region] : region_by_version) {
    EXPECT_LE(version, engine.live_manager()->version());
  }

  // Settle and cross-check the final snapshot against a fresh unsharded
  // executor pinned to it.
  engine.shard_coordinator()->FlushIngestors();
  SnapshotRef fin = engine.live_manager()->Acquire();
  auto live_result = engine.shard_coordinator()->Execute(*plan);
  ASSERT_TRUE(live_result.ok());
  ASSERT_EQ(live_result->stats.snapshot_version, fin.version());
  QueryExecutor static_exec(engine.network(), engine.st_index(),
                            fin.con_index(), fin.profile(),
                            engine.delta_t_seconds(),
                            QueryExecutorOptions{.num_threads = 1});
  auto static_result = static_exec.Execute(*plan);
  ASSERT_TRUE(static_result.ok());
  EXPECT_EQ(live_result->segments, static_result->segments);
}

}  // namespace
}  // namespace strr
