// Tests for the plan -> execute pipeline: QueryPlanner validation and
// resolution, QueryExecutor batches (parallel == sequential, per-plan
// errors), parallel m-query legs, and a multi-threaded hammer over one
// shared engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/query_executor.h"
#include "core/reachability_engine.h"
#include "query/query_plan.h"
#include "tests/test_util.h"

namespace strr {
namespace {

using testing_util::GetSharedStack;

/// A mixed bag of s- and m-queries over the shared test city, all at busy
/// hours so the regions are non-trivial.
std::vector<QueryPlan> MakeMixedPlans(const testing_util::SharedStack& stack) {
  const QueryPlanner& planner = stack.engine->planner();
  Mbr box = stack.engine->network().BoundingBox();
  XyPoint off_center{box.min_x() + box.Width() * 0.35,
                     box.min_y() + box.Height() * 0.4};
  XyPoint far_corner{box.min_x() + box.Width() * 0.7,
                     box.min_y() + box.Height() * 0.65};

  std::vector<QueryPlan> plans;
  auto add = [&](StatusOr<QueryPlan> plan) {
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    plans.push_back(std::move(plan).value());
  };
  add(planner.PlanSQuery({stack.dataset.center, HMS(11), 600, 0.1}));
  add(planner.PlanSQuery({off_center, HMS(10), 900, 0.2}));
  add(planner.PlanSQuery({stack.dataset.center, HMS(9), 1200, 0.3}));
  add(planner.PlanSQuery({far_corner, HMS(12), 600, 0.1}));
  MQuery m;
  m.locations = {stack.dataset.center, off_center, far_corner};
  m.start_tod = HMS(10);
  m.duration = 600;
  m.prob = 0.1;
  add(planner.PlanMQuery(m, QueryStrategy::kIndexed));
  add(planner.PlanMQuery(m, QueryStrategy::kRepeatedS));
  return plans;
}

// --- QueryPlanner -----------------------------------------------------------

TEST(QueryPlannerTest, ResolvesTwoWayTwins) {
  auto& stack = GetSharedStack();
  auto plan = stack.engine->planner().PlanSQuery(
      {stack.dataset.center, HMS(11), 600, 0.2});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->locations.size(), 1u);
  ASSERT_EQ(plan->location_starts.size(), 1u);
  EXPECT_FALSE(plan->location_starts[0].empty());
  EXPECT_EQ(plan->strategy, QueryStrategy::kIndexed);
  EXPECT_EQ(plan->AllStartSegments().size(), plan->location_starts[0].size());
}

TEST(QueryPlannerTest, ValidatesArguments) {
  auto& stack = GetSharedStack();
  const QueryPlanner& planner = stack.engine->planner();
  SQuery q{stack.dataset.center, HMS(11), 600, 0.0};
  EXPECT_TRUE(planner.PlanSQuery(q).status().IsInvalidArgument());
  q.prob = 1.5;
  EXPECT_TRUE(planner.PlanSQuery(q).status().IsInvalidArgument());
  q.prob = 0.2;
  q.duration = 0;
  EXPECT_TRUE(planner.PlanSQuery(q).status().IsInvalidArgument());
  MQuery m;  // no locations
  m.prob = 0.5;
  EXPECT_TRUE(planner.PlanMQuery(m).status().IsInvalidArgument());
  m.locations = {stack.dataset.center};
  EXPECT_TRUE(planner.PlanMQuery(m, QueryStrategy::kExhaustive)
                  .status()
                  .IsInvalidArgument());
}

TEST(QueryPlannerTest, SingleLocationRepeatedSNormalizesToIndexed) {
  auto& stack = GetSharedStack();
  auto plan = stack.engine->planner().PlanSQuery(
      {stack.dataset.center, HMS(11), 600, 0.2}, QueryStrategy::kRepeatedS);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->strategy, QueryStrategy::kIndexed);
}

// --- QueryExecutor: batches --------------------------------------------------

TEST(QueryExecutorTest, BatchMatchesSequentialExecution) {
  auto& stack = GetSharedStack();
  std::vector<QueryPlan> plans = MakeMixedPlans(stack);
  ASSERT_FALSE(plans.empty());

  // Reference: sequential execution on a single-threaded executor.
  QueryExecutorOptions seq_opt;
  seq_opt.num_threads = 1;
  auto sequential = stack.engine->MakeExecutor(seq_opt);
  std::vector<RegionResult> reference;
  for (const QueryPlan& plan : plans) {
    auto r = sequential->Execute(plan);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    reference.push_back(std::move(r).value());
  }

  // Concurrent: 4 workers, parallel legs on.
  QueryExecutorOptions par_opt;
  par_opt.num_threads = 4;
  auto concurrent = stack.engine->MakeExecutor(par_opt);
  for (int round = 0; round < 3; ++round) {
    auto results = concurrent->ExecuteBatch(plans);
    ASSERT_EQ(results.size(), plans.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
      EXPECT_EQ(results[i]->segments, reference[i].segments)
          << "plan " << i << " (" << QueryStrategyName(plans[i].strategy)
          << ") diverged from sequential execution in round " << round;
      EXPECT_DOUBLE_EQ(results[i]->total_length_m, reference[i].total_length_m);
    }
  }
}

TEST(QueryExecutorTest, ErrorPlansDoNotPoisonBatch) {
  auto& stack = GetSharedStack();
  auto good = stack.engine->planner().PlanSQuery(
      {stack.dataset.center, HMS(11), 600, 0.1});
  ASSERT_TRUE(good.ok());

  QueryPlan bad_prob = *good;
  bad_prob.prob = 0.0;
  QueryPlan no_location;  // never touched a planner: no resolved starts
  QueryPlan bad_starts = *good;
  bad_starts.location_starts = {{}};

  std::vector<QueryPlan> plans = {*good, bad_prob, no_location, bad_starts,
                                  *good};
  auto executor = stack.engine->MakeExecutor({.num_threads = 4});
  auto results = executor->ExecuteBatch(plans);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].status().IsInvalidArgument());
  EXPECT_TRUE(results[2].status().IsInvalidArgument());
  EXPECT_TRUE(results[3].status().IsInvalidArgument());
  EXPECT_TRUE(results[4].ok());
  EXPECT_EQ(results[0]->segments, results[4]->segments);
  EXPECT_FALSE(results[0]->segments.empty());
}

TEST(QueryExecutorTest, EmptyBatchIsFine) {
  auto& stack = GetSharedStack();
  auto results =
      stack.engine->executor().ExecuteBatch(std::span<const QueryPlan>{});
  EXPECT_TRUE(results.empty());
}

// --- QueryExecutor: parallel m-query legs ------------------------------------

TEST(QueryExecutorTest, ParallelRepeatedSLegsMatchSequentialAndSumWall) {
  auto& stack = GetSharedStack();
  Mbr box = stack.engine->network().BoundingBox();
  MQuery m;
  m.locations = {stack.dataset.center,
                 {box.min_x() + box.Width() * 0.3,
                  box.min_y() + box.Height() * 0.3},
                 {box.min_x() + box.Width() * 0.7,
                  box.min_y() + box.Height() * 0.6}};
  m.start_tod = HMS(10);
  m.duration = 600;
  m.prob = 0.1;
  auto plan =
      stack.engine->planner().PlanMQuery(m, QueryStrategy::kRepeatedS);
  ASSERT_TRUE(plan.ok());

  auto sequential = stack.engine->MakeExecutor(
      {.num_threads = 1, .parallel_mquery_legs = false});
  auto parallel = stack.engine->MakeExecutor(
      {.num_threads = 4, .parallel_mquery_legs = true});
  auto rs = sequential->Execute(*plan);
  auto rp = parallel->Execute(*plan);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_TRUE(rp.ok()) << rp.status().ToString();
  EXPECT_EQ(rs->segments, rp->segments);
  ASSERT_FALSE(rp->segments.empty());
  // Both report the per-leg sum alongside the end-to-end wall time; the
  // sum covers the legs regardless of how they were scheduled.
  EXPECT_GT(rs->stats.sum_wall_ms, 0.0);
  EXPECT_GT(rp->stats.sum_wall_ms, 0.0);
  // Sequentially, the end-to-end time covers all legs plus merge overhead.
  EXPECT_GE(rs->stats.wall_ms, rs->stats.sum_wall_ms * 0.5);
  EXPECT_EQ(rs->stats.segments_verified, rp->stats.segments_verified);
}

TEST(QueryExecutorTest, RepeatedSStatsSumSubQueries) {
  // The repeated-s baseline must report the same verification totals as
  // running its legs by hand, and wall/sum_wall must both be populated.
  auto& stack = GetSharedStack();
  Mbr box = stack.engine->network().BoundingBox();
  MQuery m;
  m.locations = {stack.dataset.center,
                 {box.min_x() + box.Width() * 0.4,
                  box.min_y() + box.Height() * 0.5}};
  m.start_tod = HMS(11);
  m.duration = 600;
  m.prob = 0.2;
  auto rep = stack.engine->MQueryRepeatedSQuery(m);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();

  uint64_t verified = 0;
  double wall_sum = 0.0;
  for (const XyPoint& p : m.locations) {
    auto r = stack.engine->SQueryIndexed({p, m.start_tod, m.duration, m.prob});
    ASSERT_TRUE(r.ok());
    verified += r->stats.segments_verified;
    wall_sum += r->stats.wall_ms;
  }
  EXPECT_EQ(rep->stats.segments_verified, verified);
  EXPECT_GT(rep->stats.sum_wall_ms, 0.0);
  EXPECT_GT(rep->stats.wall_ms, 0.0);
  (void)wall_sum;  // timing varies run to run; totals above are the check
}

// --- Hammer: one shared engine, many client threads --------------------------

TEST(QueryExecutorTest, ConcurrentClientsOverSharedEngineAgree) {
  auto& stack = GetSharedStack();
  std::vector<QueryPlan> plans = MakeMixedPlans(stack);
  ASSERT_FALSE(plans.empty());

  // Reference results, computed sequentially up front.
  std::vector<std::vector<SegmentId>> reference;
  for (const QueryPlan& plan : plans) {
    auto r = stack.engine->executor().Execute(plan);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    reference.push_back(r->segments);
  }

  constexpr int kThreads = 8;
  constexpr int kRoundsPerThread = 5;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        size_t i = (t + round) % plans.size();
        auto r = stack.engine->executor().Execute(plans[i]);
        if (!r.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (r->segments != reference[i]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(QueryExecutorTest, ConcurrentBatchesOnFreshEngineWithColdConIndex) {
  // A fresh engine exercises the lazy Con-Index materialization race: many
  // concurrent queries force the same (segment, slot) tables at once.
  auto& stack = GetSharedStack();
  EngineOptions opt;
  opt.work_dir = testing_util::MakeTempDir("cold_executor");
  opt.delta_t_seconds = 300;
  opt.query_threads = 4;
  auto engine = ReachabilityEngine::Build(stack.dataset.network,
                                          *stack.dataset.store, opt);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  std::vector<QueryPlan> plans;
  for (int i = 0; i < 8; ++i) {
    auto plan = (*engine)->planner().PlanSQuery(
        {stack.dataset.center, HMS(9 + (i % 4)), 600, 0.1});
    ASSERT_TRUE(plan.ok());
    plans.push_back(std::move(plan).value());
  }
  auto results = (*engine)->executor().ExecuteBatch(plans);
  ASSERT_EQ(results.size(), plans.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    // Identical plans must give identical regions regardless of which
    // thread materialized the Con-Index tables first.
    if (i >= 4) EXPECT_EQ(results[i]->segments, results[i - 4]->segments);
  }
}

}  // namespace
}  // namespace strr
