// Parameterized property sweeps across the whole stack: invariants that
// must hold for any (seed, scale, Δt) combination of the pipeline.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/dataset.h"
#include "core/reachability_engine.h"
#include "tests/test_util.h"

namespace strr {
namespace {

using testing_util::MakeTempDir;

struct SweepParam {
  uint64_t seed;
  int taxis;
  int days;
  int64_t delta_t;
};

class PipelinePropertyTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  void SetUp() override {
    const SweepParam& p = GetParam();
    DatasetOptions opt = TestDatasetOptions();
    opt.city.seed = p.seed;
    opt.fleet.seed = p.seed * 31 + 7;
    opt.fleet.num_taxis = p.taxis;
    opt.fleet.num_days = p.days;
    auto dataset = BuildDataset(opt);
    ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
    dataset_ = std::make_unique<Dataset>(std::move(*dataset));
    EngineOptions eopt;
    eopt.work_dir = MakeTempDir("sweep");
    eopt.delta_t_seconds = p.delta_t;
    auto engine =
        ReachabilityEngine::Build(dataset_->network, *dataset_->store, eopt);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(*engine);
  }

  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<ReachabilityEngine> engine_;
};

TEST_P(PipelinePropertyTest, EsSubsetOfIndexedRegion) {
  for (int hour : {9, 12, 19}) {
    SQuery q{dataset_->center, HMS(hour), 600, 0.25};
    auto indexed = engine_->SQueryIndexed(q);
    auto es = engine_->SQueryExhaustive(q);
    ASSERT_TRUE(indexed.ok());
    ASSERT_TRUE(es.ok());
    EXPECT_TRUE(std::includes(indexed->segments.begin(),
                              indexed->segments.end(), es->segments.begin(),
                              es->segments.end()))
        << "hour " << hour;
  }
}

TEST_P(PipelinePropertyTest, RegionMonotoneInProb) {
  std::vector<double> probs = {0.1, 0.3, 0.6, 0.9};
  double prev = 1e18;
  for (double prob : probs) {
    SQuery q{dataset_->center, HMS(12), 900, prob};
    auto r = engine_->SQueryIndexed(q);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(r->total_length_m, prev + 1e-6) << "prob " << prob;
    prev = r->total_length_m;
  }
}

TEST_P(PipelinePropertyTest, RegionWithinMaxBoundAndSorted) {
  SQuery q{dataset_->center, HMS(12), 900, 0.2};
  auto r = engine_->SQueryIndexed(q);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->segments.size(), r->stats.max_region_segments);
  EXPECT_TRUE(std::is_sorted(r->segments.begin(), r->segments.end()));
  for (SegmentId s : r->segments) {
    EXPECT_LT(s, engine_->network().NumSegments());
  }
}

TEST_P(PipelinePropertyTest, VerificationNeverExceedsEs) {
  SQuery q{dataset_->center, HMS(12), 900, 0.2};
  auto indexed = engine_->SQueryIndexed(q);
  auto es = engine_->SQueryExhaustive(q);
  ASSERT_TRUE(indexed.ok());
  ASSERT_TRUE(es.ok());
  EXPECT_LE(indexed->stats.segments_verified,
            es->stats.segments_verified + 2);  // twin-set slack
}

TEST_P(PipelinePropertyTest, DeterministicAnswers) {
  SQuery q{dataset_->center, HMS(12), 600, 0.3};
  auto a = engine_->SQueryIndexed(q);
  auto b = engine_->SQueryIndexed(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->segments, b->segments);
}

TEST_P(PipelinePropertyTest, MQueryCoversWidestSingle) {
  Mbr box = engine_->network().BoundingBox();
  MQuery m;
  m.locations = {dataset_->center,
                 {box.min_x() + box.Width() * 0.3,
                  box.min_y() + box.Height() * 0.4}};
  m.start_tod = HMS(12);
  m.duration = 900;
  m.prob = 0.2;
  auto mr = engine_->MQueryIndexed(m);
  ASSERT_TRUE(mr.ok());
  for (const XyPoint& loc : m.locations) {
    SQuery s{loc, m.start_tod, m.duration, m.prob};
    auto sr = engine_->SQueryIndexed(s);
    ASSERT_TRUE(sr.ok());
    // The m-query is at least as large as the smaller single regions
    // (union semantics; elimination may trim overlap edges, so compare
    // against 60% of each single region rather than strict inclusion).
    std::vector<SegmentId> common;
    std::set_intersection(mr->segments.begin(), mr->segments.end(),
                          sr->segments.begin(), sr->segments.end(),
                          std::back_inserter(common));
    if (!sr->segments.empty()) {
      EXPECT_GT(static_cast<double>(common.size()) / sr->segments.size(), 0.6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelinePropertyTest,
    ::testing::Values(SweepParam{3, 25, 6, 300},
                      SweepParam{11, 40, 10, 300},
                      SweepParam{23, 30, 8, 600},
                      SweepParam{41, 35, 5, 120}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "Seed" + std::to_string(info.param.seed) + "T" +
             std::to_string(info.param.taxis) + "D" +
             std::to_string(info.param.days) + "Dt" +
             std::to_string(info.param.delta_t);
    });

}  // namespace
}  // namespace strr
