// Tests for query-statistics accounting and I/O bookkeeping invariants:
// these numbers are what the benches report, so they must be trustworthy.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/reachability_engine.h"
#include "query/query_plan.h"
#include "tests/test_util.h"

namespace strr {
namespace {

using testing_util::GetSharedStack;

TEST(QueryStatsTest, IoDeltaMatchesStoreCounters) {
  auto& stack = GetSharedStack();
  StIndex& index = stack.engine->st_index();
  SQuery q{stack.dataset.center, HMS(11), 600, 0.2};

  stack.engine->ResetIoStats(/*drop_cache=*/true);
  StorageStats before = index.storage_stats();
  auto r = stack.engine->SQueryIndexed(q);
  ASSERT_TRUE(r.ok());
  StorageStats after = index.storage_stats();

  // The per-query delta the engine reports equals the store-level delta.
  EXPECT_EQ(r->stats.io.cache_misses, after.cache_misses - before.cache_misses);
  EXPECT_EQ(r->stats.io.cache_hits, after.cache_hits - before.cache_hits);
  EXPECT_EQ(r->stats.io.disk_page_reads,
            after.disk_page_reads - before.disk_page_reads);
}

TEST(QueryStatsTest, ColdQueryReadsDiskWarmQueryDoesNot) {
  auto& stack = GetSharedStack();
  SQuery q{stack.dataset.center, HMS(11), 600, 0.2};
  stack.engine->ResetIoStats(/*drop_cache=*/true);
  auto cold = stack.engine->SQueryIndexed(q);
  ASSERT_TRUE(cold.ok());
  if (cold->stats.time_lists_read == 0) {
    GTEST_SKIP() << "no traffic at this start; nothing to measure";
  }
  EXPECT_GT(cold->stats.io.disk_page_reads, 0u);

  // Same query again with a warm cache: far fewer (usually zero) reads.
  auto warm = stack.engine->SQueryIndexed(q);
  ASSERT_TRUE(warm.ok());
  EXPECT_LT(warm->stats.io.disk_page_reads, cold->stats.io.disk_page_reads);
  // Identical answers regardless of cache state.
  EXPECT_EQ(warm->segments, cold->segments);
}

TEST(QueryStatsTest, TimeListsReadAtLeastVerifications) {
  // Every verification reads at least zero lists (quiet candidates are
  // skipped via the directory), and the start lists are counted once.
  auto& stack = GetSharedStack();
  SQuery q{stack.dataset.center, HMS(11), 900, 0.2};
  auto r = stack.engine->SQueryIndexed(q);
  ASSERT_TRUE(r.ok());
  // Candidate slots for L=900 at dt=300 is 3; each verified segment reads
  // at most that many lists, plus the start-window reads.
  uint64_t max_possible = r->stats.segments_verified * 3 + 8;
  EXPECT_LE(r->stats.time_lists_read, max_possible);
}

TEST(QueryStatsTest, WallTimeIsPositiveAndBounded) {
  auto& stack = GetSharedStack();
  SQuery q{stack.dataset.center, HMS(11), 600, 0.2};
  auto r = stack.engine->SQueryIndexed(q);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stats.wall_ms, 0.0);
  EXPECT_LT(r->stats.wall_ms, 60 * 1000.0);  // sanity: under a minute
}

TEST(QueryStatsTest, BoundingRegionCountsConsistent) {
  auto& stack = GetSharedStack();
  SQuery q{stack.dataset.center, HMS(11), 600, 0.2};
  auto r = stack.engine->SQueryIndexed(q);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->stats.min_region_segments, r->stats.max_region_segments);
  EXPECT_LE(r->stats.boundary_segments, r->stats.max_region_segments);
  EXPECT_LE(r->segments.size(), r->stats.max_region_segments);
}

TEST(QueryStatsTest, ConcurrentQueriesGetDisjointIoAttribution) {
  // Per-query stats.io is counted through a thread-local scope in the
  // BufferPool read path, so two I/O-heavy queries running concurrently
  // must each report exactly their own page requests — the engine-global
  // delta PR 1 used attributed both queries' traffic to both. Page
  // *requests* (hits + misses) are deterministic per query regardless of
  // page-cache state, so the solo run is an exact oracle.
  auto& stack = GetSharedStack();
  const QueryPlanner& planner = stack.engine->planner();
  Mbr box = stack.engine->network().BoundingBox();
  auto plan_a = planner.PlanSQuery({stack.dataset.center, HMS(11), 900, 0.1});
  auto plan_b = planner.PlanSQuery(
      {{box.min_x() + box.Width() * 0.65, box.min_y() + box.Height() * 0.6},
       HMS(10),
       900,
       0.1});
  ASSERT_TRUE(plan_a.ok());
  ASSERT_TRUE(plan_b.ok());

  auto solo_a = stack.engine->executor().Execute(*plan_a);
  auto solo_b = stack.engine->executor().Execute(*plan_b);
  ASSERT_TRUE(solo_a.ok());
  ASSERT_TRUE(solo_b.ok());
  if (solo_a->stats.io.TotalRequests() == 0 ||
      solo_b->stats.io.TotalRequests() == 0) {
    GTEST_SKIP() << "a query generated no storage traffic; nothing to "
                    "attribute";
  }

  std::atomic<int> wrong_attribution{0};
  std::atomic<int> failures{0};
  auto client = [&](const QueryPlan& plan, uint64_t expected_requests) {
    for (int round = 0; round < 10; ++round) {
      auto r = stack.engine->executor().Execute(plan);
      if (!r.ok()) {
        failures.fetch_add(1);
        continue;
      }
      if (r->stats.io.TotalRequests() != expected_requests) {
        wrong_attribution.fetch_add(1);
      }
    }
  };
  std::thread ta(client, *plan_a, solo_a->stats.io.TotalRequests());
  std::thread tb(client, *plan_b, solo_b->stats.io.TotalRequests());
  ta.join();
  tb.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(wrong_attribution.load(), 0)
      << "concurrent queries contaminated each other's stats.io";
}

TEST(QueryStatsTest, DropCacheForcesRereads) {
  auto& stack = GetSharedStack();
  StIndex& index = stack.engine->st_index();
  SQuery q{stack.dataset.center, HMS(11), 600, 0.2};
  auto first = stack.engine->SQueryIndexed(q);
  ASSERT_TRUE(first.ok());
  if (first->stats.time_lists_read == 0) {
    GTEST_SKIP() << "no traffic at this start";
  }
  index.ResetStorageStats();
  index.DropCache();
  auto after_drop = stack.engine->SQueryIndexed(q);
  ASSERT_TRUE(after_drop.ok());
  EXPECT_GT(after_drop->stats.io.cache_misses, 0u);
}

}  // namespace
}  // namespace strr
