// Live ingestion subsystem tests: snapshot publication semantics
// (LiveProfileManager), batching/coalescing/backpressure
// (ObservationIngestor), the snapshot-pinned executor read path, the
// engine-level end-to-end flow with the FleetSimulator as observation
// source, negative caching at the facade, and the concurrent
// query-vs-ingest hammer (the suite the TSan/ASan CI jobs run to prove no
// torn reads and no use-after-free across epoch retirement).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "core/query_executor.h"
#include "core/reachability_engine.h"
#include "live/epoch_manager.h"
#include "live/live_profile_manager.h"
#include "live/observation_ingestor.h"
#include "traj/fleet_simulator.h"
#include "tests/test_util.h"

namespace strr {
namespace {

using testing_util::GetSharedStack;
using testing_util::MakeTempDir;

/// A second engine over the shared dataset with the full front door on:
/// live ingestion (manual-flush ingestor installed by Build), result
/// cache, and negative cache. Built once per binary.
struct LiveStack {
  ReachabilityEngine* engine = nullptr;
};

LiveStack& GetLiveStack() {
  static LiveStack* stack = [] {
    auto* s = new LiveStack();
    auto& base = GetSharedStack();
    EngineOptions opt;
    opt.work_dir = MakeTempDir("live_engine");
    opt.delta_t_seconds = 300;
    opt.live_ingestion = true;
    opt.live_batch_window_ms = 2;
    opt.live_queue_bound = 1 << 14;
    opt.result_cache_entries = 512;
    opt.negative_cache_entries = 64;
    opt.negative_cache_ttl_ms = 60'000;
    auto engine =
        ReachabilityEngine::Build(base.dataset.network, *base.dataset.store,
                                  opt);
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    static std::unique_ptr<ReachabilityEngine> holder =
        std::move(engine).value();
    s->engine = holder.get();
    return s;
  }();
  return *stack;
}

/// Picks a segment with observed traffic around `tod` (so its profile cell
/// has real min/max to perturb).
SegmentId BusySegment(const SpeedProfile& profile, const RoadNetwork& network,
                      int64_t tod) {
  for (SegmentId seg = 0; seg < network.NumSegments(); ++seg) {
    if (profile.HasObservations(seg, tod)) return seg;
  }
  ADD_FAILURE() << "no segment with observations at tod " << tod;
  return 0;
}

// --- LiveProfileManager -----------------------------------------------------

TEST(LiveProfileManagerTest, PublishCreatesNewVersionOldPinsKeepReading) {
  auto& stack = GetSharedStack();
  const SpeedProfile& base = stack.engine->speed_profile();
  EpochManager epochs;
  LiveProfileManager live(epochs, base, stack.engine->con_index());

  SnapshotRef v0 = live.Acquire();
  EXPECT_EQ(v0.version(), 0u);
  EXPECT_EQ(&v0.profile(), &base) << "version 0 aliases the base profile";

  const int64_t tod = HMS(9);
  SegmentId seg = BusySegment(base, stack.engine->network(), tod);
  double old_min = base.MinSpeed(seg, tod);
  ASSERT_GT(old_min, 0.6);

  // A near-crawl observation: must lower the slot minimum.
  CoalescedUpdate update{seg, tod, 0.6f, 0.6f, 0.6f, 1};
  EXPECT_EQ(live.Publish({&update, 1}), 1u);
  EXPECT_EQ(live.version(), 1u);

  SnapshotRef v1 = live.Acquire();
  EXPECT_EQ(v1.version(), 1u);
  EXPECT_DOUBLE_EQ(v1.profile().MinSpeed(seg, tod),
                   static_cast<double>(0.6f));
  // The pinned old version is immutable: still the pre-publish value.
  EXPECT_DOUBLE_EQ(v0.profile().MinSpeed(seg, tod), old_min);
  EXPECT_DOUBLE_EQ(base.MinSpeed(seg, tod), old_min)
      << "publishing must never mutate the base profile";

  LiveProfileManager::Stats stats = live.stats();
  EXPECT_EQ(stats.published, 1u);
  EXPECT_EQ(stats.updates_applied, 1u);
  EXPECT_GE(stats.slots_invalidated, 1u);
}

TEST(LiveProfileManagerTest, QuietPublishSkipsInvalidation) {
  auto& stack = GetSharedStack();
  const SpeedProfile& base = stack.engine->speed_profile();
  EpochManager epochs;
  LiveProfileManager live(epochs, base, stack.engine->con_index());
  int invalidations = 0;
  live.AddInvalidationListener(
      [&invalidations](int64_t, int64_t) { ++invalidations; });

  // Find a cell with a real (min, max) gap and feed a strictly interior
  // speed: counts and means move, extremes do not.
  const int64_t tod = HMS(9);
  const RoadNetwork& network = stack.engine->network();
  SegmentId seg = kInvalidSegment;
  for (SegmentId s = 0; s < network.NumSegments(); ++s) {
    if (base.HasObservations(s, tod) &&
        base.MaxSpeed(s, tod) - base.MinSpeed(s, tod) > 1.0) {
      seg = s;
      break;
    }
  }
  ASSERT_NE(seg, kInvalidSegment);
  float interior = static_cast<float>(
      (base.MinSpeed(seg, tod) + base.MaxSpeed(seg, tod)) / 2.0);
  double old_mean = base.MeanSpeed(seg, tod);

  CoalescedUpdate update{seg, tod, interior, interior, interior, 1};
  live.Publish({&update, 1});

  SnapshotRef v1 = live.Acquire();
  EXPECT_EQ(v1.version(), 1u) << "quiet publishes still version the profile";
  EXPECT_NE(v1.profile().MeanSpeed(seg, tod), old_mean);
  EXPECT_DOUBLE_EQ(v1.profile().MinSpeed(seg, tod),
                   base.MinSpeed(seg, tod));
  EXPECT_EQ(invalidations, 0) << "no extreme change -> no invalidation";
  LiveProfileManager::Stats stats = live.stats();
  EXPECT_EQ(stats.publishes_quiet, 1u);
  EXPECT_EQ(stats.slots_invalidated, 0u);
}

TEST(LiveProfileManagerTest, CloneSharesUnaffectedConIndexSlots) {
  auto& stack = GetSharedStack();
  const SpeedProfile& base = stack.engine->speed_profile();
  EpochManager epochs;
  LiveProfileManager live(epochs, base, stack.engine->con_index());

  const int64_t warm_tod = HMS(14);
  const int64_t hit_tod = HMS(9);
  SegmentId seg = BusySegment(base, stack.engine->network(), hit_tod);

  SnapshotRef v0 = live.Acquire();
  std::vector<SegmentId> warm_far = v0.con_index().Far(seg, warm_tod);
  std::vector<SegmentId> old_near = v0.con_index().Near(seg, hit_tod);
  size_t materialized_before = v0.con_index().MaterializedTables();
  ASSERT_GE(materialized_before, 2u);

  // Crawl observation in the 9h slot only: the 14h tables must carry over.
  CoalescedUpdate update{seg, hit_tod, 0.6f, 0.6f, 0.6f, 1};
  live.Publish({&update, 1});

  SnapshotRef v1 = live.Acquire();
  EXPECT_GE(v1.con_index().MaterializedTables(), 1u)
      << "unaffected slot tables must be shared, not dropped";
  EXPECT_EQ(v1.con_index().Far(seg, warm_tod), warm_far)
      << "shared slot serves identical lists";
  // The crawl minimum shrinks the Near cone (or leaves it at the floor).
  std::vector<SegmentId> new_near = v1.con_index().Near(seg, hit_tod);
  EXPECT_LE(new_near.size(), old_near.size());
  // The old snapshot still serves its original tables.
  EXPECT_EQ(v0.con_index().Near(seg, hit_tod), old_near);
}

// The soundness proof for partial invalidation, checked empirically: a
// cell-only extreme change (no level-fallback movement) gives the slot an
// overlay instead of a full drop, and every table the new snapshot serves
// — kept from the base bucket or lazily rebuilt — must be bit-identical
// to a from-scratch index over the refreshed profile.
TEST(LiveProfileManagerTest, PartialInvalidationMatchesFullRebuild) {
  auto& stack = GetSharedStack();
  const SpeedProfile& base = stack.engine->speed_profile();
  const RoadNetwork& network = stack.engine->network();
  EpochManager epochs;
  LiveProfileManager live(epochs, base, stack.engine->con_index());

  const int64_t tod = HMS(10);
  // The busy segment with the LARGEST slot minimum: lowering its cell min
  // slightly stays above the level fallback minimum (held by some slower
  // segment), so the change is cell-only.
  SegmentId seg = kInvalidSegment;
  double best_min = 0.0;
  for (SegmentId s = 0; s < network.NumSegments(); ++s) {
    if (!base.HasObservations(s, tod)) continue;
    double m = base.MinSpeed(s, tod);
    if (m > best_min) {
      best_min = m;
      seg = s;
    }
  }
  ASSERT_NE(seg, kInvalidSegment);
  ASSERT_GT(best_min, 1.0);
  float v = static_cast<float>(best_min - 0.01);

  // Warm a spread of tables so the overlay has something to keep.
  SnapshotRef v0 = live.Acquire();
  std::vector<SegmentId> sample = {seg, 0,
                                   static_cast<SegmentId>(
                                       network.NumSegments() / 2),
                                   static_cast<SegmentId>(
                                       network.NumSegments() - 1)};
  for (SegmentId s : sample) {
    v0.con_index().Near(s, tod);
    v0.con_index().Far(s, tod);
  }

  CoalescedUpdate update{seg, tod, v, v, v, 1};
  live.Publish({&update, 1});
  LiveProfileManager::Stats stats = live.stats();
  ASSERT_EQ(stats.slots_partially_invalidated, 1u)
      << "expected a cell-only change (fallback minimum held elsewhere)";
  EXPECT_EQ(stats.slots_invalidated, 0u);

  // Oracle: a from-scratch lazy index over the refreshed profile.
  SnapshotRef v1 = live.Acquire();
  ConIndexOptions con_opt;
  con_opt.delta_t_seconds = stack.engine->delta_t_seconds();
  auto fresh = ConIndex::Create(network, v1.profile(), con_opt);
  ASSERT_TRUE(fresh.ok());
  for (SegmentId s : sample) {
    EXPECT_EQ(v1.con_index().Near(s, tod), (*fresh)->Near(s, tod))
        << "Near mismatch at segment " << s;
    EXPECT_EQ(v1.con_index().Far(s, tod), (*fresh)->Far(s, tod))
        << "Far mismatch at segment " << s;
  }
  // The overlay genuinely kept base tables (the warmed spread minus the
  // reachable neighbourhood of the changed segment).
  EXPECT_GT(v1.con_index().MaterializedTables(), 0u);
  // And the old snapshot still serves pre-update tables.
  EXPECT_EQ(v0.con_index().Near(seg, tod).size(),
            v0.con_index().Near(seg, tod).size());
}

TEST(LiveProfileManagerTest, SupersededSnapshotsAreReclaimedAfterDrain) {
  auto& stack = GetSharedStack();
  EpochManager epochs;
  {
    LiveProfileManager live(epochs, stack.engine->speed_profile(),
                            stack.engine->con_index());
    SegmentId seg =
        BusySegment(stack.engine->speed_profile(), stack.engine->network(),
                    HMS(9));
    for (int i = 0; i < 5; ++i) {
      CoalescedUpdate update{seg, HMS(9), 0.6f, 0.6f, 0.6f, 1};
      live.Publish({&update, 1});
    }
    EXPECT_EQ(live.version(), 5u);
    epochs.TryReclaim();
  }
  // Manager destruction synchronized and reclaimed everything it retired.
  EpochManager::Stats stats = epochs.stats();
  EXPECT_EQ(stats.retired, 5u);
  EXPECT_EQ(stats.reclaimed, 5u);
  EXPECT_EQ(stats.in_limbo, 0u);
}

// --- ObservationIngestor ----------------------------------------------------

TEST(ObservationIngestorTest, CoalescesPerSegmentSlotAndMatchesSequential) {
  auto& stack = GetSharedStack();
  const SpeedProfile& base = stack.engine->speed_profile();
  EpochManager epochs;
  LiveProfileManager live(epochs, base, stack.engine->con_index());
  ObservationIngestorOptions opt;
  opt.manual = true;
  ObservationIngestor ingest(live, opt);

  const int64_t tod = HMS(9);
  SegmentId seg_a = BusySegment(base, stack.engine->network(), tod);
  SegmentId seg_b = seg_a + 1;
  std::vector<SpeedObservation> obs = {
      {seg_a, tod, 3.5}, {seg_a, tod + 10, 1.2}, {seg_a, tod + 20, 7.9},
      {seg_b, tod, 2.2}, {seg_b, tod + 5, 2.4},
  };
  for (const SpeedObservation& o : obs) EXPECT_TRUE(ingest.Offer(o));
  EXPECT_EQ(ingest.stats().queue_depth, 5u);

  EXPECT_EQ(ingest.Flush(), 5u);
  ObservationIngestor::Stats stats = ingest.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.coalesced_updates, 2u) << "two (segment, slot) groups";
  EXPECT_EQ(stats.published, 5u);
  EXPECT_EQ(live.version(), 1u) << "one publish for the whole batch";

  // Oracle: the legacy one-at-a-time path over a private fork. Extremes
  // (all the query path reads) are exact; the mean may differ by float
  // summation order.
  SpeedProfile oracle = base.Fork();
  for (const SpeedObservation& o : obs) {
    oracle.ApplyObservation(o.segment, o.time_of_day_sec, o.speed_mps);
  }
  SnapshotRef v1 = live.Acquire();
  for (SegmentId seg : {seg_a, seg_b}) {
    EXPECT_DOUBLE_EQ(v1.profile().MinSpeed(seg, tod),
                     oracle.MinSpeed(seg, tod));
    EXPECT_DOUBLE_EQ(v1.profile().MaxSpeed(seg, tod),
                     oracle.MaxSpeed(seg, tod));
    EXPECT_NEAR(v1.profile().MeanSpeed(seg, tod), oracle.MeanSpeed(seg, tod),
                1e-4);
  }
}

TEST(ObservationIngestorTest, BoundedQueueDropsBeyondCapacity) {
  auto& stack = GetSharedStack();
  EpochManager epochs;
  LiveProfileManager live(epochs, stack.engine->speed_profile(),
                          stack.engine->con_index());
  ObservationIngestorOptions opt;
  opt.manual = true;
  opt.queue_bound = 4;
  ObservationIngestor ingest(live, opt);
  for (int i = 0; i < 6; ++i) {
    ingest.Offer({0, HMS(9), 5.0 + i});
  }
  ObservationIngestor::Stats stats = ingest.stats();
  EXPECT_EQ(stats.accepted, 4u);
  EXPECT_EQ(stats.dropped_full, 2u);
  EXPECT_EQ(stats.max_queue_depth, 4u);
  EXPECT_EQ(ingest.Flush(), 4u);
  EXPECT_EQ(ingest.stats().queue_depth, 0u);
}

TEST(ObservationIngestorTest, RejectsInvalidSpeeds) {
  auto& stack = GetSharedStack();
  EpochManager epochs;
  LiveProfileManager live(epochs, stack.engine->speed_profile(),
                          stack.engine->con_index());
  ObservationIngestorOptions opt;
  opt.manual = true;
  ObservationIngestor ingest(live, opt);
  EXPECT_FALSE(ingest.Offer({0, HMS(9), std::nan("")}));
  EXPECT_FALSE(
      ingest.Offer({0, HMS(9), std::numeric_limits<double>::infinity()}));
  EXPECT_FALSE(ingest.Offer({0, HMS(9), 0.1}));  // below min_speed_floor
  ObservationIngestor::Stats stats = ingest.stats();
  EXPECT_EQ(stats.rejected_invalid, 3u);
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(ingest.Flush(), 0u);
  EXPECT_EQ(live.version(), 0u);
}

TEST(ObservationIngestorTest, NegativeTimeOfDayNormalizes) {
  auto& stack = GetSharedStack();
  const SpeedProfile& base = stack.engine->speed_profile();
  EpochManager epochs;
  LiveProfileManager live(epochs, base, stack.engine->con_index());
  ObservationIngestorOptions opt;
  opt.manual = true;
  ObservationIngestor ingest(live, opt);
  // -1h before midnight == 23h.
  EXPECT_TRUE(ingest.Offer({0, -kSecondsPerHour, 0.55}));
  EXPECT_EQ(ingest.Flush(), 1u);
  SnapshotRef v1 = live.Acquire();
  EXPECT_DOUBLE_EQ(v1.profile().MinSpeed(0, HMS(23)),
                   static_cast<double>(0.55f));
}

TEST(ObservationIngestorTest, BatcherThreadPublishesWithinWindow) {
  auto& stack = GetSharedStack();
  EpochManager epochs;
  LiveProfileManager live(epochs, stack.engine->speed_profile(),
                          stack.engine->con_index());
  ObservationIngestorOptions opt;
  opt.batch_window_ms = 2;
  ObservationIngestor ingest(live, opt);
  for (int i = 0; i < 16; ++i) {
    ingest.Offer({static_cast<SegmentId>(i), HMS(9), 4.0 + i});
  }
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (live.version() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(live.version(), 0u) << "batcher thread should publish on its own";
  ingest.Stop();
  ObservationIngestor::Stats stats = ingest.stats();
  EXPECT_EQ(stats.published, 16u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_GE(stats.mean_staleness_ms, 0.0);
  EXPECT_EQ(stats.queue_depth, 0u) << "Stop flushes the tail";
}

// --- Snapshot-pinned executor ----------------------------------------------

TEST(LiveExecutorTest, ResultsRecordSnapshotVersionAndTrackRefreshes) {
  auto& stack = GetSharedStack();
  ReachabilityEngine& engine = *stack.engine;
  EpochManager epochs;
  LiveProfileManager live(epochs, engine.speed_profile(),
                          engine.con_index());
  QueryExecutor exec(engine.network(), engine.st_index(), engine.con_index(),
                     engine.speed_profile(), engine.delta_t_seconds(),
                     QueryExecutorOptions{.num_threads = 1}, &live);

  auto plan = engine.planner().PlanSQuery({stack.dataset.center, HMS(9), 600,
                                           0.2});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto before = exec.Execute(*plan);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_EQ(before->stats.snapshot_version, 0u);

  // Crawl all start segments: the 9h slot tables rebuild under the new
  // minimum and the region computed on the new version can only shrink or
  // hold (Near regions are built from minimum speeds).
  for (SegmentId seg : plan->location_starts[0]) {
    CoalescedUpdate update{seg, HMS(9), 0.6f, 0.6f, 0.6f, 1};
    live.Publish({&update, 1});
  }
  auto after = exec.Execute(*plan);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->stats.snapshot_version, live.version());
  EXPECT_EQ(exec.front_door_stats().snapshot_version, live.version());

  // The static engine path is untouched by live publishes.
  auto static_result = engine.SQueryIndexed({stack.dataset.center, HMS(9),
                                             600, 0.2});
  ASSERT_TRUE(static_result.ok());
  EXPECT_EQ(static_result->segments, before->segments)
      << "live publishes must not leak into the engine-built indexes";
}

TEST(LiveExecutorTest, FrontDoorStatsExposePoolCounters) {
  auto& stack = GetSharedStack();
  ReachabilityEngine& engine = *stack.engine;
  auto exec = engine.MakeExecutor({.num_threads = 2});
  std::vector<QueryPlan> plans;
  for (int i = 0; i < 4; ++i) {
    auto plan = engine.planner().PlanSQuery(
        {stack.dataset.center, HMS(9 + i), 600, 0.2});
    ASSERT_TRUE(plan.ok());
    plans.push_back(std::move(plan).value());
  }
  exec->ExecuteBatch(plans);
  // completed_ increments just after a worker fulfills the future the
  // batch joined on; Wait() orders the counter behind the last task.
  exec->thread_pool().Wait();
  QueryExecutor::FrontDoorStats stats = exec->front_door_stats();
  EXPECT_GE(stats.pool_submitted, plans.size());
  EXPECT_EQ(stats.pool_submitted, stats.pool_completed)
      << "batch joined -> nothing in flight";
  EXPECT_EQ(stats.pool_queue_depth, 0u);
}

// The acceptance-criteria hammer: N query threads against M ingest
// threads, no quiescing. Every result must be bit-identical to the result
// every other thread computed at the same snapshot version — one torn
// profile read, half-invalidated table, or recycled snapshot breaks the
// equality (and TSan/ASan flag the root cause in CI).
TEST(LiveExecutorTest, ConcurrentQueryIngestHammerServesConsistentSnapshots) {
  auto& stack = GetSharedStack();
  ReachabilityEngine& engine = *stack.engine;
  EpochManagerOptions epoch_opt;
  epoch_opt.max_retained = 4;
  EpochManager epochs(epoch_opt);
  LiveProfileManager live(epochs, engine.speed_profile(),
                          engine.con_index());
  QueryExecutor exec(engine.network(), engine.st_index(), engine.con_index(),
                     engine.speed_profile(), engine.delta_t_seconds(),
                     QueryExecutorOptions{.num_threads = 4,
                                          .result_cache_entries = 256},
                     &live);
  // No manual invalidation wiring: the executor registered its cache with
  // the live manager at construction — this hammer exercises exactly that
  // fan-out (a stale cache serve would surface as a version mismatch).
  ObservationIngestorOptions ingest_opt;
  ingest_opt.batch_window_ms = 1;
  ObservationIngestor ingest(live, ingest_opt);

  auto plan = engine.planner().PlanSQuery({stack.dataset.center, HMS(9), 600,
                                           0.2});
  ASSERT_TRUE(plan.ok());
  const std::vector<SegmentId> starts = plan->location_starts[0];

  constexpr int kQueryThreads = 4;
  constexpr int kIngestThreads = 2;
  constexpr int kQueriesPerThread = 40;

  std::mutex mu;
  std::map<uint64_t, std::vector<SegmentId>> region_by_version;
  std::atomic<bool> stop_ingest{false};
  std::atomic<int> mismatches{0};

  std::vector<std::thread> ingesters;
  for (int t = 0; t < kIngestThreads; ++t) {
    ingesters.emplace_back([&, t] {
      // Slow-heavy source so minima keep dropping and publishes genuinely
      // invalidate the query's 9h slot (plus background noise elsewhere).
      LiveObservationOptions src_opt;
      src_opt.seed = 1000 + t;
      src_opt.slow_traversal_prob = 0.5;
      LiveObservationSource source(engine.network(), src_opt);
      size_t i = 0;
      while (!stop_ingest.load()) {
        SegmentId target = starts[i % starts.size()];
        ingest.Offer(source.NextAt(target, HMS(9) + (i % 600)));
        ingest.Offer(source.Next(HMS(9 + i % 3)));
        ++i;
        std::this_thread::yield();
      }
    });
  }

  std::vector<std::thread> queriers;
  for (int t = 0; t < kQueryThreads; ++t) {
    queriers.emplace_back([&] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        auto result = exec.Execute(*plan);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        std::lock_guard<std::mutex> lock(mu);
        auto [it, inserted] = region_by_version.try_emplace(
            result->stats.snapshot_version, result->segments);
        if (!inserted && it->second != result->segments) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : queriers) t.join();
  stop_ingest.store(true);
  for (auto& t : ingesters) t.join();
  ingest.Stop();

  EXPECT_EQ(mismatches.load(), 0)
      << "same snapshot version must always produce the same region";
  EXPECT_GT(live.version(), 0u) << "ingestion actually published";
  ASSERT_FALSE(region_by_version.empty());
  for (const auto& [version, region] : region_by_version) {
    EXPECT_LE(version, live.version());
  }

  // Final consistency: a fresh query on the final snapshot matches a
  // from-scratch executor bound statically to that snapshot's indexes.
  {
    SnapshotRef fin = live.Acquire();
    auto live_result = exec.Execute(*plan);
    ASSERT_TRUE(live_result.ok());
    ASSERT_EQ(live_result->stats.snapshot_version, fin.version())
        << "no publishes in flight anymore";
    QueryExecutor static_exec(engine.network(), engine.st_index(),
                              fin.con_index(), fin.profile(),
                              engine.delta_t_seconds(),
                              QueryExecutorOptions{.num_threads = 1});
    auto static_result = static_exec.Execute(*plan);
    ASSERT_TRUE(static_result.ok());
    EXPECT_EQ(live_result->segments, static_result->segments);
  }
  EXPECT_EQ(epochs.stats().in_limbo, 0u)
      << "quiet system retains no superseded snapshots";
}

// --- Engine end-to-end -------------------------------------------------------

TEST(LiveEngineTest, ApplySpeedObservationRoutesThroughIngestor) {
  ReachabilityEngine& engine = *GetLiveStack().engine;
  ASSERT_NE(engine.live_manager(), nullptr);
  ASSERT_NE(engine.ingestor(), nullptr);
  uint64_t version_before = engine.live_manager()->version();
  double base_min =
      engine.speed_profile().MinSpeed(0, HMS(3));  // quiet 3am slot
  engine.ApplySpeedObservation(0, HMS(3), 0.9);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (engine.live_manager()->version() == version_before &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(engine.live_manager()->version(), version_before);
  // The base profile is untouched; the snapshot carries the refresh.
  EXPECT_DOUBLE_EQ(engine.speed_profile().MinSpeed(0, HMS(3)), base_min);
  SnapshotRef snap = engine.live_manager()->Acquire();
  EXPECT_DOUBLE_EQ(snap.profile().MinSpeed(0, HMS(3)),
                   static_cast<double>(0.9f));
}

TEST(LiveEngineTest, EndToEndSoakWithFleetObservationSource) {
  ReachabilityEngine& engine = *GetLiveStack().engine;
  auto& base = GetSharedStack();
  SQuery probe{base.dataset.center, HMS(9), 600, 0.2};

  std::atomic<bool> stop{false};
  std::thread feeder([&] {
    LiveObservationOptions src_opt;
    src_opt.seed = 77;
    src_opt.slow_traversal_prob = 0.3;
    LiveObservationSource source(engine.network(), src_opt);
    size_t i = 0;
    while (!stop.load()) {
      engine.OfferObservation(source.Next(HMS(9) + (i++ % 3600)));
      std::this_thread::yield();
    }
  });

  std::mutex mu;
  std::map<uint64_t, std::vector<SegmentId>> region_by_version;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> queriers;
  for (int t = 0; t < 3; ++t) {
    queriers.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        auto result = engine.SQueryIndexed(probe);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        std::lock_guard<std::mutex> lock(mu);
        auto [it, inserted] = region_by_version.try_emplace(
            result->stats.snapshot_version, result->segments);
        if (!inserted && it->second != result->segments) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : queriers) t.join();
  // On a single-core host the feeder may not have won the CPU from the
  // spinning queriers yet; wait on the ingestion condition (bounded) so
  // the assertions test the pipeline, not the scheduler.
  auto wait_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (engine.ingestor()->stats().accepted == 0 &&
         std::chrono::steady_clock::now() < wait_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  feeder.join();
  // Likewise the batcher thread: drain deterministically.
  engine.ingestor()->Flush();

  EXPECT_EQ(mismatches.load(), 0);
  ObservationIngestor::Stats stats = engine.ingestor()->stats();
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_GT(engine.live_manager()->version(), 0u);

  // And the refresh is live: a fresh query answers on a published version
  // (possibly older than head if it hit a cache entry whose Δt-slots no
  // later publish invalidated — that entry is still bit-correct).
  auto fresh = engine.SQueryIndexed(probe);
  ASSERT_TRUE(fresh.ok());
  EXPECT_LE(fresh->stats.snapshot_version,
            engine.live_manager()->version());
}

TEST(LiveEngineTest, NegativeCacheAbsorbsJunkLocationFlood) {
  ReachabilityEngine& engine = *GetLiveStack().engine;
  ASSERT_NE(engine.negative_cache(), nullptr);
  SQuery junk{{1.0e9, -1.0e9}, HMS(9), 600, 0.2};

  auto first = engine.SQueryIndexed(junk);
  EXPECT_TRUE(first.status().IsNotFound()) << first.status().ToString();
  NegativeCache::Stats after_first = engine.negative_cache()->stats();
  EXPECT_EQ(after_first.insertions, 1u);

  for (int i = 0; i < 10; ++i) {
    auto repeat = engine.SQueryIndexed(junk);
    EXPECT_TRUE(repeat.status().IsNotFound());
  }
  NegativeCache::Stats after_flood = engine.negative_cache()->stats();
  EXPECT_EQ(after_flood.insertions, 1u) << "flood served from cache";
  EXPECT_GE(after_flood.hits, 10u);

  // Same coordinates through the m-query facade share nothing: different
  // location-set key, separate entry.
  MQuery mjunk;
  mjunk.locations = {junk.location, junk.location};
  auto mresult = engine.MQueryIndexed(mjunk);
  EXPECT_TRUE(mresult.status().IsNotFound());

  // Valid queries are unaffected.
  auto& base = GetSharedStack();
  auto good = engine.SQueryIndexed({base.dataset.center, HMS(9), 600, 0.2});
  EXPECT_TRUE(good.ok()) << good.status().ToString();
}

}  // namespace
}  // namespace strr
