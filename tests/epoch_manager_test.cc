// EpochManager unit + hammer tests: pin/unpin bookkeeping, deferred
// reclamation across the grace period, max-retained-epochs pressure, and a
// concurrent publish/read hammer that mirrors how LiveProfileManager uses
// the manager (run under TSan/ASan in CI).
#include "live/epoch_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace strr {
namespace {

TEST(EpochManagerTest, AcquireReturnsPinnedGuard) {
  EpochManager em;
  uint64_t before = em.current_epoch();
  EpochManager::Pin pin = em.Acquire();
  EXPECT_TRUE(pin.pinned());
  EXPECT_EQ(pin.epoch(), before);
  pin.Release();
  EXPECT_FALSE(pin.pinned());
  EXPECT_EQ(em.stats().pins, 1u);
}

TEST(EpochManagerTest, RetireAdvancesEpochAndReclaimsWhenUnpinned) {
  EpochManager em;
  uint64_t before = em.current_epoch();
  bool deleted = false;
  em.Retire([&deleted] { deleted = true; });
  EXPECT_EQ(em.current_epoch(), before + 1);
  // No reader was pinned: Retire's inline reclaim already ran it.
  EXPECT_TRUE(deleted);
  EXPECT_EQ(em.stats().reclaimed, 1u);
  EXPECT_EQ(em.stats().in_limbo, 0u);
}

TEST(EpochManagerTest, PinnedReaderDefersReclamation) {
  EpochManager em;
  bool deleted = false;
  EpochManager::Pin pin = em.Acquire();
  em.Retire([&deleted] { deleted = true; });
  em.TryReclaim();
  EXPECT_FALSE(deleted) << "reader pinned before retire must keep it alive";
  EXPECT_EQ(em.stats().in_limbo, 1u);
  pin.Release();
  EXPECT_EQ(em.TryReclaim(), 1u);
  EXPECT_TRUE(deleted);
}

TEST(EpochManagerTest, ReaderPinnedAfterRetireDoesNotBlockIt) {
  EpochManager em;
  bool deleted = false;
  em.Retire([&deleted] { deleted = true; });  // reclaims inline (no pins)
  deleted = false;
  EpochManager::Pin late = em.Acquire();  // epoch is already past the stamp
  bool deleted2 = false;
  em.Retire([&deleted2] { deleted2 = true; });
  em.TryReclaim();
  // `late` pinned an epoch <= the second stamp, so the second retire waits…
  EXPECT_FALSE(deleted2);
  late.Release();
  em.TryReclaim();
  EXPECT_TRUE(deleted2);
}

TEST(EpochManagerTest, MovedPinTransfersOwnership) {
  EpochManager em;
  EpochManager::Pin a = em.Acquire();
  EpochManager::Pin b = std::move(a);
  EXPECT_FALSE(a.pinned());  // NOLINT(bugprone-use-after-move): testing it
  EXPECT_TRUE(b.pinned());
  bool deleted = false;
  em.Retire([&deleted] { deleted = true; });
  em.TryReclaim();
  EXPECT_FALSE(deleted);
  b.Release();
  em.TryReclaim();
  EXPECT_TRUE(deleted);
}

TEST(EpochManagerTest, MaxRetainedPressureWaitsForGracePeriod) {
  EpochManagerOptions opt;
  opt.max_retained = 2;
  EpochManager em(opt);
  auto pin = std::make_unique<EpochManager::Pin>(em.Acquire());
  std::atomic<int> deleted{0};
  em.Retire([&deleted] { deleted.fetch_add(1); });
  em.Retire([&deleted] { deleted.fetch_add(1); });
  // Third retire exceeds max_retained while the pin blocks reclamation:
  // it must wait until the reader drains.
  std::atomic<bool> third_done{false};
  std::thread writer([&] {
    em.Retire([&deleted] { deleted.fetch_add(1); });
    third_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_done.load()) << "writer should wait under pressure";
  EXPECT_EQ(deleted.load(), 0);
  pin.reset();  // release the reader -> grace period elapses
  writer.join();
  EXPECT_TRUE(third_done.load());
  em.TryReclaim();
  EXPECT_EQ(deleted.load(), 3);
  EXPECT_GE(em.stats().grace_waits, 1u);
}

TEST(EpochManagerTest, SynchronizeAndReclaimDrainsEverything) {
  EpochManager em;
  EpochManager::Pin pin = em.Acquire();
  std::atomic<int> deleted{0};
  em.Retire([&deleted] { deleted.fetch_add(1); });
  std::thread releaser([&pin] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pin.Release();
  });
  em.SynchronizeAndReclaim();
  releaser.join();
  EXPECT_EQ(deleted.load(), 1);
  EXPECT_EQ(em.stats().in_limbo, 0u);
}

TEST(EpochManagerTest, DestructorRunsRemainingDeleters) {
  std::atomic<int> deleted{0};
  {
    EpochManager em;
    EpochManager::Pin pin = em.Acquire();
    em.Retire([&deleted] { deleted.fetch_add(1); });
    pin.Release();
    // Intentionally no TryReclaim: the destructor must not leak limbo.
  }
  EXPECT_EQ(deleted.load(), 1);
}

// The exact usage pattern LiveProfileManager runs: a writer publishing
// versions of a heap object through an atomic pointer while readers
// pin-load-read-release. Any reclamation bug here is a use-after-free that
// ASan/TSan (CI jobs) turn into a hard failure; the value checks below
// catch torn or recycled reads even in plain builds.
TEST(EpochManagerTest, ConcurrentPublishReadHammer) {
  struct Boxed {
    uint64_t a;
    uint64_t b;  // always == a + 1: a torn/freed read breaks the invariant
  };
  EpochManagerOptions opt;
  opt.max_retained = 4;
  EpochManager em(opt);
  std::atomic<Boxed*> current{new Boxed{0, 1}};
  constexpr int kReaders = 4;
  constexpr int kReadsPerThread = 2000;
  std::atomic<int> readers_done{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < kReadsPerThread; ++i) {
        EpochManager::Pin pin = em.Acquire();
        Boxed* b = current.load();
        ASSERT_EQ(b->b, b->a + 1);
      }
      readers_done.fetch_add(1);
    });
  }
  // Publish for as long as any reader is still hammering (so the
  // retire/reclaim machinery genuinely races the pins), and at least a
  // handful of times regardless — on a single-core host the readers can
  // finish before the writer is ever scheduled.
  uint64_t versions = 0;
  do {
    ++versions;
    Boxed* next = new Boxed{versions, versions + 1};
    Boxed* old = current.exchange(next);
    em.Retire([old] { delete old; });
  } while (readers_done.load() < kReaders || versions < 8);
  for (auto& t : readers) t.join();
  em.SynchronizeAndReclaim();
  EpochManager::Stats stats = em.stats();
  EXPECT_GT(versions, 0u);
  EXPECT_EQ(stats.retired, versions);
  EXPECT_EQ(stats.reclaimed, versions);
  EXPECT_EQ(stats.in_limbo, 0u);
  EXPECT_EQ(stats.pins,
            static_cast<uint64_t>(kReaders) * kReadsPerThread);
  delete current.load();
}

}  // namespace
}  // namespace strr
