// Live-tier durability tests: journal round trips through restart, the
// memtable flush / WAL rotation lifecycle, torn-tail recovery, table
// corruption detection, engine-level recovery bit-identity against a live
// oracle, and (via the crash harness) SIGKILL mid-ingest recovery.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/reachability_engine.h"
#include "live/observation_journal.h"
#include "live/recovery_manager.h"
#include "storage/bloom_filter.h"
#include "storage/fs_util.h"
#include "storage/obs_table.h"
#include "storage/wal/log_writer.h"
#include "tests/test_util.h"
#include "tools/crash_stream.h"
#include "util/serialize.h"

namespace strr {
namespace {

namespace fs = std::filesystem;
using testing_util::GetSharedStack;
using testing_util::MakeTempDir;

constexpr uint32_t kStreamSegments = 100;

// MakeTempDir names repeat across process runs (unseeded rand()), and
// journal recovery is exactly the machinery that notices leftover state —
// start every durability dir empty.
std::string FreshDir(const std::string& tag) {
  std::string dir = MakeTempDir(tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

ObservationBatch StreamBatch(uint64_t seq) {
  return ObservationBatch{seq, crash_stream::GenBatch(seq, kStreamSegments)};
}

void ExpectBitIdentical(const ObservationBatch& got, uint64_t seq) {
  std::vector<SpeedObservation> want =
      crash_stream::GenBatch(seq, kStreamSegments);
  ASSERT_EQ(got.seq, seq);
  ASSERT_EQ(got.observations.size(), want.size()) << "seq=" << seq;
  for (size_t k = 0; k < want.size(); ++k) {
    EXPECT_EQ(got.observations[k].segment, want[k].segment);
    EXPECT_EQ(got.observations[k].time_of_day_sec, want[k].time_of_day_sec);
    // Raw double bits must survive the WAL + table round trip.
    EXPECT_EQ(got.observations[k].speed_mps, want[k].speed_mps);
  }
}

std::vector<ObservationBatch> MustCollect(const RecoveredLog& recovered) {
  auto batches = RecoveryManager::CollectBatches(recovered);
  EXPECT_TRUE(batches.ok()) << batches.status().ToString();
  return batches.ok() ? *std::move(batches) : std::vector<ObservationBatch>{};
}

size_t CountFiles(const std::string& dir, const std::string& suffix) {
  size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      ++n;
    }
  }
  return n;
}

TEST(ObservationJournalTest, RoundTripThroughRestart) {
  std::string dir = FreshDir("dur_journal");
  ObservationJournalOptions jopt;
  jopt.dir = dir;
  {
    auto recovered = RecoveryManager::Recover(dir);
    STRR_ASSERT_OK(recovered.status());
    EXPECT_EQ(recovered->last_seq, 0u);
    auto journal = ObservationJournal::Open(jopt, *recovered);
    STRR_ASSERT_OK(journal.status());
    for (uint64_t seq = 1; seq <= 20; ++seq) {
      auto acked = (*journal)->AppendBatch(StreamBatch(seq).observations);
      STRR_ASSERT_OK(acked.status());
      EXPECT_EQ(*acked, seq);
    }
    EXPECT_EQ((*journal)->last_seq(), 20u);
  }  // clean shutdown seals the memtable

  auto recovered = RecoveryManager::Recover(dir);
  STRR_ASSERT_OK(recovered.status());
  ASSERT_EQ(recovered->last_seq, 20u);
  std::vector<ObservationBatch> batches = MustCollect(*recovered);
  ASSERT_EQ(batches.size(), 20u);
  for (uint64_t seq = 1; seq <= 20; ++seq) {
    ExpectBitIdentical(batches[seq - 1], seq);
  }

  // Restart continues the sequence where the ack stream left off.
  auto journal = ObservationJournal::Open(jopt, *recovered);
  STRR_ASSERT_OK(journal.status());
  auto acked = (*journal)->AppendBatch(StreamBatch(21).observations);
  STRR_ASSERT_OK(acked.status());
  EXPECT_EQ(*acked, 21u);
}

TEST(ObservationJournalTest, MemtableFlushSealsTablesAndRotatesWal) {
  std::string dir = FreshDir("dur_flush");
  ObservationJournalOptions jopt;
  jopt.dir = dir;
  jopt.memtable_flush_bytes = 512;  // a handful of batches per table
  {
    auto recovered = RecoveryManager::Recover(dir);
    STRR_ASSERT_OK(recovered.status());
    auto journal = ObservationJournal::Open(jopt, *recovered);
    STRR_ASSERT_OK(journal.status());
    for (uint64_t seq = 1; seq <= 50; ++seq) {
      STRR_ASSERT_OK(
          (*journal)->AppendBatch(StreamBatch(seq).observations).status());
    }
    auto stats = (*journal)->stats();
    EXPECT_GE(stats.tables_flushed, 3u);
    EXPECT_GT(stats.wal_syncs, 0u);
    // Rotation deletes fully-covered logs: only the active one remains.
    EXPECT_EQ(CountFiles(dir, ".log"), 1u);
    EXPECT_GE(CountFiles(dir, ".tbl"), 3u);
  }
  auto recovered = RecoveryManager::Recover(dir);
  STRR_ASSERT_OK(recovered.status());
  ASSERT_EQ(recovered->last_seq, 50u);
  std::vector<ObservationBatch> batches = MustCollect(*recovered);
  ASSERT_EQ(batches.size(), 50u);
  for (uint64_t seq = 1; seq <= 50; ++seq) {
    ExpectBitIdentical(batches[seq - 1], seq);
  }
}

// Writes batches 1..n into a bare WAL file (no journal, so nothing seals
// on destruction) and returns the raw log bytes.
std::string BuildBareWal(const std::string& path, uint64_t n) {
  auto file = AppendOnlyFile::Create(path);
  EXPECT_TRUE(file.ok());
  wal::LogWriter writer(file->get());
  for (uint64_t seq = 1; seq <= n; ++seq) {
    BinaryWriter w;
    EncodeObservationBatch(w, StreamBatch(seq));
    EXPECT_TRUE(writer.AddRecord(w.data()).ok());
  }
  EXPECT_TRUE((*file)->Close().ok());
  auto bytes = ReadFileToString(path);
  EXPECT_TRUE(bytes.ok());
  return *bytes;
}

TEST(RecoveryManagerTest, WalTruncationRecoversAckedPrefix) {
  std::string dir = FreshDir("dur_trunc");
  std::string wal_path = dir + "/wal_1.log";
  std::string contents = BuildBareWal(wal_path, 6);

  for (size_t cut = 0; cut < contents.size(); cut += 23) {
    {
      std::ofstream out(wal_path, std::ios::binary | std::ios::trunc);
      out.write(contents.data(), static_cast<std::streamsize>(cut));
    }
    auto recovered = RecoveryManager::Recover(dir);
    ASSERT_TRUE(recovered.ok())
        << "cut=" << cut << " " << recovered.status().ToString();
    ASSERT_LE(recovered->last_seq, 6u) << "cut=" << cut;
    std::vector<ObservationBatch> batches = MustCollect(*recovered);
    ASSERT_EQ(batches.size(), recovered->last_seq) << "cut=" << cut;
    for (uint64_t seq = 1; seq <= recovered->last_seq; ++seq) {
      ExpectBitIdentical(batches[seq - 1], seq);
    }
  }
}

TEST(RecoveryManagerTest, WalByteFlipIsCorruption) {
  std::string dir = FreshDir("dur_walflip");
  std::string wal_path = dir + "/wal_1.log";
  std::string contents = BuildBareWal(wal_path, 4);
  std::string mutated = contents;
  mutated[contents.size() / 3] ^= 0x10;
  {
    std::ofstream out(wal_path, std::ios::binary | std::ios::trunc);
    out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
  }
  auto recovered = RecoveryManager::Recover(dir);
  if (recovered.ok()) {
    // A flip in the final record's length field can present as a torn
    // tail; the acked prefix must still be intact then.
    EXPECT_TRUE(recovered->wal_tail_torn);
    EXPECT_LT(recovered->last_seq, 4u);
  } else {
    EXPECT_TRUE(recovered.status().IsCorruption())
        << recovered.status().ToString();
  }
}

TEST(RecoveryManagerTest, TableWalOverlapDeduplicatesBySeq) {
  // The crash window between table seal and old-WAL delete leaves both
  // holding the same batches; recovery must merge them exactly once.
  std::string dir = FreshDir("dur_overlap");
  ObservationTableBuilder table;
  for (uint64_t seq = 1; seq <= 3; ++seq) table.AddBatch(StreamBatch(seq));
  STRR_ASSERT_OK(table.Finish(dir + "/obs_1.tbl"));
  {
    auto file = AppendOnlyFile::Create(dir + "/wal_2.log");
    ASSERT_TRUE(file.ok());
    wal::LogWriter writer(file->get());
    for (uint64_t seq = 2; seq <= 5; ++seq) {
      BinaryWriter w;
      EncodeObservationBatch(w, StreamBatch(seq));
      STRR_ASSERT_OK(writer.AddRecord(w.data()));
    }
    STRR_ASSERT_OK((*file)->Close());
  }
  auto recovered = RecoveryManager::Recover(dir);
  STRR_ASSERT_OK(recovered.status());
  EXPECT_EQ(recovered->last_seq, 5u);
  EXPECT_EQ(recovered->last_table_seq, 3u);
  std::vector<ObservationBatch> batches = MustCollect(*recovered);
  ASSERT_EQ(batches.size(), 5u);
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    ExpectBitIdentical(batches[seq - 1], seq);
  }
}

TEST(RecoveryManagerTest, SequenceGapIsCorruption) {
  std::string dir = FreshDir("dur_gap");
  ObservationTableBuilder table;
  table.AddBatch(StreamBatch(1));
  table.AddBatch(StreamBatch(2));
  STRR_ASSERT_OK(table.Finish(dir + "/obs_1.tbl"));
  {
    auto file = AppendOnlyFile::Create(dir + "/wal_2.log");
    ASSERT_TRUE(file.ok());
    wal::LogWriter writer(file->get());
    BinaryWriter w;
    EncodeObservationBatch(w, StreamBatch(5));  // 3 and 4 are missing
    STRR_ASSERT_OK(writer.AddRecord(w.data()));
    STRR_ASSERT_OK((*file)->Close());
  }
  auto recovered = RecoveryManager::Recover(dir);
  ASSERT_FALSE(recovered.ok());
  EXPECT_TRUE(recovered.status().IsCorruption())
      << recovered.status().ToString();
}

TEST(ObservationTableTest, BloomFilterHasNoFalseNegatives) {
  ObservationTableBuilder builder;
  ObservationBatch batch;
  batch.seq = 1;
  for (SegmentId segment : {2u, 40u, 77u}) {
    batch.observations.push_back({segment, 3600, 10.0});
  }
  builder.AddBatch(batch);
  std::string dir = FreshDir("dur_bloom");
  STRR_ASSERT_OK(builder.Finish(dir + "/obs_1.tbl"));
  auto table = ObservationTable::Open(dir + "/obs_1.tbl");
  STRR_ASSERT_OK(table.status());
  EXPECT_TRUE(table->MayContainSegment(2));
  EXPECT_TRUE(table->MayContainSegment(40));
  EXPECT_TRUE(table->MayContainSegment(77));
  // Probabilistic, but with 10 bits/key almost every absent id says no.
  size_t negatives = 0;
  for (SegmentId segment = 1000; segment < 1500; ++segment) {
    if (!table->MayContainSegment(segment)) ++negatives;
  }
  EXPECT_GE(negatives, 400u);
}

TEST(ObservationTableTest, MutationSweepIsAlwaysTypedCorruption) {
  ObservationTableBuilder builder;
  for (uint64_t seq = 1; seq <= 5; ++seq) builder.AddBatch(StreamBatch(seq));
  std::string dir = FreshDir("dur_tblflip");
  std::string path = dir + "/obs_1.tbl";
  STRR_ASSERT_OK(builder.Finish(path));
  auto original = ReadFileToString(path);
  STRR_ASSERT_OK(original.status());

  size_t stride = std::max<size_t>(1, original->size() / 53);
  for (size_t pos = 0; pos < original->size(); pos += stride) {
    std::string mutated = *original;
    mutated[pos] ^= 0x04;
    auto parsed = ObservationTable::Parse(mutated, "mutated");
    ASSERT_FALSE(parsed.ok()) << "pos=" << pos;
    EXPECT_TRUE(parsed.status().IsCorruption())
        << "pos=" << pos << " " << parsed.status().ToString();
  }
  for (size_t cut : {size_t{0}, size_t{5}, original->size() / 2,
                     original->size() - 1}) {
    auto parsed = ObservationTable::Parse(original->substr(0, cut), "cut");
    ASSERT_FALSE(parsed.ok()) << "cut=" << cut;
    EXPECT_TRUE(parsed.status().IsCorruption()) << "cut=" << cut;
  }
}

TEST(EngineDurabilityTest, DurabilityRequiresLiveIngestion) {
  auto& stack = GetSharedStack();
  EngineOptions opt;
  opt.work_dir = FreshDir("dur_req");
  opt.live_durability = true;
  auto engine = ReachabilityEngine::Build(stack.dataset.network,
                                          *stack.dataset.store, opt);
  ASSERT_FALSE(engine.ok());
  EXPECT_TRUE(engine.status().IsInvalidArgument());
}

TEST(EngineDurabilityTest, RestartServesSameRegionsAsLiveOracle) {
  auto& stack = GetSharedStack();
  const uint32_t num_segments =
      static_cast<uint32_t>(stack.dataset.network.NumSegments());
  std::string jdir = FreshDir("dur_engine_wal");

  std::vector<SpeedObservation> stream;
  for (uint64_t seq = 1; seq <= 40; ++seq) {
    std::vector<SpeedObservation> batch =
        crash_stream::GenBatch(seq, num_segments);
    stream.insert(stream.end(), batch.begin(), batch.end());
  }

  auto feed = [&](ReachabilityEngine& engine) {
    for (const SpeedObservation& obs : stream) {
      ASSERT_TRUE(engine.OfferObservation(obs));
    }
    engine.ingestor()->Flush();
  };
  std::vector<SQuery> queries;
  for (int64_t tod : {8 * 3600, 12 * 3600 + 1800, 19 * 3600}) {
    queries.push_back(SQuery{stack.dataset.center, tod, 600, 0.2});
  }
  auto regions = [&](ReachabilityEngine& engine) {
    std::vector<std::vector<SegmentId>> out;
    for (const SQuery& q : queries) {
      auto result = engine.SQueryIndexed(q);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      out.push_back(result.ok() ? result->segments
                                : std::vector<SegmentId>{});
    }
    return out;
  };

  // Durable engine: ingest the stream, remember its answers, shut down.
  std::vector<std::vector<SegmentId>> before;
  {
    EngineOptions opt;
    opt.work_dir = FreshDir("dur_engine_a");
    opt.live_ingestion = true;
    opt.live_durability = true;
    opt.live_durability_dir = jdir;
    opt.live_memtable_flush_bytes = 2048;  // several table seals
    auto engine = ReachabilityEngine::Build(stack.dataset.network,
                                            *stack.dataset.store, opt);
    STRR_ASSERT_OK(engine.status());
    feed(**engine);
    auto stats = (*engine)->ingestor()->stats();
    EXPECT_EQ(stats.wal_append_failures, 0u);
    EXPECT_GT(stats.wal_batches, 0u);
    before = regions(**engine);
  }

  // Restarted engine: recovery must replay to the same serving state.
  EngineOptions opt_restart;
  opt_restart.work_dir = FreshDir("dur_engine_a2");
  opt_restart.live_ingestion = true;
  opt_restart.live_durability = true;
  opt_restart.live_durability_dir = jdir;
  auto restarted = ReachabilityEngine::Build(stack.dataset.network,
                                             *stack.dataset.store,
                                             opt_restart);
  STRR_ASSERT_OK(restarted.status());
  EXPECT_GT((*restarted)->live_recovery().recovered_batches, 0u);
  EXPECT_EQ((*restarted)->live_recovery().replay_publishes > 0, true);

  // Oracle: a fresh live engine fed the identical stream, never restarted.
  EngineOptions opt_oracle;
  opt_oracle.work_dir = FreshDir("dur_engine_b");
  opt_oracle.live_ingestion = true;
  auto oracle = ReachabilityEngine::Build(stack.dataset.network,
                                          *stack.dataset.store, opt_oracle);
  STRR_ASSERT_OK(oracle.status());
  feed(**oracle);

  std::vector<std::vector<SegmentId>> after = regions(**restarted);
  std::vector<std::vector<SegmentId>> want = regions(**oracle);
  EXPECT_EQ(after, before);
  EXPECT_EQ(after, want);
}

#ifdef STRR_CRASH_HARNESS_PATH
struct CrashDrillConfig {
  const char* name;
  const char* checkpoint_interval;  // "0" disables
  const char* compaction;           // "0" or "1"
  int kill_delay_ms;
};

TEST(DurabilityCrashTest, SigkillMidIngestRecoversExactly) {
  // End-to-end crash drill: SIGKILL the harness writer mid-stream with the
  // storage-engine knobs off and on (so the kill can land inside the
  // checkpoint-write, WAL-truncation, and compaction-swap windows), then
  // let the checker assert recovery reproduces exactly the acked
  // observation stream (and the same served regions as an oracle fed that
  // stream live).
  for (const CrashDrillConfig& config : {
           CrashDrillConfig{"plain", "0", "0", 150},
           CrashDrillConfig{"plain", "0", "0", 700},
           CrashDrillConfig{"checkpoint", "15", "0", 400},
           CrashDrillConfig{"checkpoint_compaction", "15", "1", 600},
       }) {
    SCOPED_TRACE(config.name);
    std::string dir = FreshDir("dur_kill");
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::execl(STRR_CRASH_HARNESS_PATH, "crash_harness", "write", dir.c_str(),
              "1000000", config.checkpoint_interval, config.compaction,
              static_cast<char*>(nullptr));
      ::_exit(127);
    }
    const int kill_delay_ms = config.kill_delay_ms;
    bool ready = false;
    for (int i = 0; i < 2400; ++i) {  // dataset build takes a while
      if (fs::exists(dir + "/READY")) {
        ready = true;
        break;
      }
      ::usleep(50 * 1000);
    }
    ASSERT_TRUE(ready) << "writer never signalled READY";
    ::usleep(kill_delay_ms * 1000);
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(wstatus));

    std::string cmd =
        std::string(STRR_CRASH_HARNESS_PATH) + " check " + dir;
    int rc = std::system(cmd.c_str());
    ASSERT_TRUE(rc != -1);
    EXPECT_EQ(WEXITSTATUS(rc), 0) << "delay=" << kill_delay_ms << "ms";
  }
}
#endif  // STRR_CRASH_HARNESS_PATH

}  // namespace
}  // namespace strr
