// Tests for time helpers, RNG and the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/time_util.h"

namespace strr {
namespace {

// --- time_util ---------------------------------------------------------------

TEST(TimeUtilTest, DayAndTimeOfDay) {
  Timestamp ts = MakeTimestamp(3, HMS(11, 30));
  EXPECT_EQ(DayOf(ts), 3);
  EXPECT_EQ(TimeOfDay(ts), HMS(11, 30));
}

TEST(TimeUtilTest, HmsComposition) {
  EXPECT_EQ(HMS(0), 0);
  EXPECT_EQ(HMS(1), 3600);
  EXPECT_EQ(HMS(23, 59, 59), 86399);
  EXPECT_EQ(HMS(11, 30), 41400);
}

TEST(TimeUtilTest, SlotOfTimeOfDay) {
  EXPECT_EQ(SlotOfTimeOfDay(0, 300), 0);
  EXPECT_EQ(SlotOfTimeOfDay(299, 300), 0);
  EXPECT_EQ(SlotOfTimeOfDay(300, 300), 1);
  EXPECT_EQ(SlotOfTimeOfDay(86399, 300), 287);
}

TEST(TimeUtilTest, SlotOfFullTimestamp) {
  Timestamp ts = MakeTimestamp(5, HMS(1, 0));  // day 5, 01:00
  EXPECT_EQ(SlotOf(ts, 3600), 1);
  EXPECT_EQ(SlotOf(ts, 300), 12);
}

TEST(TimeUtilTest, SlotsPerDay) {
  EXPECT_EQ(SlotsPerDay(300), 288);
  EXPECT_EQ(SlotsPerDay(3600), 24);
  EXPECT_EQ(SlotsPerDay(60), 1440);
  EXPECT_EQ(SlotsPerDay(86400), 1);
  // Non-dividing width rounds up.
  EXPECT_EQ(SlotsPerDay(50000), 2);
}

TEST(TimeUtilTest, FormatTimeOfDay) {
  EXPECT_EQ(FormatTimeOfDay(0), "00:00");
  EXPECT_EQ(FormatTimeOfDay(HMS(9, 5)), "09:05");
  EXPECT_EQ(FormatTimeOfDay(HMS(23, 59)), "23:59");
}

TEST(TimeUtilTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(30), "30s");
  EXPECT_EQ(FormatDuration(300), "5min");
  EXPECT_EQ(FormatDuration(7200), "2h");
  EXPECT_EQ(FormatDuration(90), "90s");
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.UniformInt(0, 1 << 30) == b.UniformInt(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformInt(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all of {3,4,5} hit
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, GaussianMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.WeightedIndex(weights), 1u);
  }
}

TEST(RngTest, WeightedIndexAllZeroReturnsZero) {
  Rng rng(19);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.WeightedIndex(weights), 0u);
}

TEST(RngTest, ForkIndependentButDeterministic) {
  Rng a(42), b(42);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  EXPECT_EQ(fa.UniformInt(0, 1 << 30), fb.UniformInt(0, 1 << 30));
}

// --- ThreadPool --------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ZeroThreadsClampsToHardwareConcurrency) {
  ThreadPool pool(0);
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) {
    EXPECT_EQ(pool.num_threads(), 1u);  // unknown topology falls back to 1
  } else {
    EXPECT_EQ(pool.num_threads(), hw);
  }
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, StatsCountSubmittedAndCompleted) {
  ThreadPool pool(2);
  ThreadPool::Stats before = pool.stats();
  EXPECT_EQ(before.submitted, 0u);
  EXPECT_EQ(before.completed, 0u);
  EXPECT_EQ(before.threads, 2u);
  for (int i = 0; i < 50; ++i) {
    pool.Submit([] {});
  }
  pool.Wait();
  ThreadPool::Stats after = pool.stats();
  EXPECT_EQ(after.submitted, 50u);
  EXPECT_EQ(after.completed, 50u);
  EXPECT_EQ(after.queue_depth, 0u);
  EXPECT_EQ(after.pending, 0u);
}

TEST(ThreadPoolTest, StatsExposeQueueDepthUnderBlockedWorkers) {
  ThreadPool pool(1);
  std::mutex gate;
  gate.lock();
  pool.Submit([&gate] { std::lock_guard<std::mutex> hold(gate); });
  // The worker is parked on the gate; everything else queues behind it.
  for (int i = 0; i < 5; ++i) {
    pool.Submit([] {});
  }
  ThreadPool::Stats blocked = pool.stats();
  EXPECT_EQ(blocked.submitted, 6u);
  EXPECT_GE(blocked.queue_depth, 5u);
  EXPECT_EQ(blocked.pending, 6u);
  gate.unlock();
  pool.Wait();
  EXPECT_EQ(pool.stats().completed, 6u);
}

TEST(ThreadPoolTest, FuturesOverloadReturnsValues) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, FuturesCarryMoveOnlyResults) {
  ThreadPool pool(2);
  auto future = pool.Submit([] {
    auto p = std::make_unique<int>(41);
    *p += 1;
    return p;
  });
  std::unique_ptr<int> result = future.get();
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(*result, 42);
}

TEST(ThreadPoolTest, OnWorkerThreadDetection) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.OnWorkerThread());
  auto inside = pool.Submit([&pool] { return pool.OnWorkerThread(); });
  EXPECT_TRUE(inside.get());
  // A different pool's worker is not "on" this pool.
  ThreadPool other(1);
  auto cross = other.Submit([&pool] { return pool.OnWorkerThread(); });
  EXPECT_FALSE(cross.get());
}

TEST(ThreadPoolTest, WaitConcurrentWithSubmit) {
  // Hammer Wait() from several threads while others keep submitting: Wait
  // must neither deadlock nor return while tasks it can see are pending.
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  constexpr int kSubmitters = 3;
  constexpr int kTasksEach = 200;
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kTasksEach; ++i) {
        pool.Submit([&executed] { executed.fetch_add(1); });
        if (i % 50 == 0) pool.Wait();
      }
    });
  }
  std::thread waiter([&] {
    for (int i = 0; i < 20; ++i) pool.Wait();
  });
  for (auto& t : submitters) t.join();
  waiter.join();
  pool.Wait();
  EXPECT_EQ(executed.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPoolTest, TasksCanSubmitMoreWorkBeforeWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.Wait();
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, ParallelSpeedupSmoke) {
  // Not a timing assertion — just checks correctness under real contention.
  ThreadPool pool(8);
  std::atomic<int64_t> total{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&total] {
      int64_t local = 0;
      for (int k = 0; k < 10000; ++k) local += k;
      total.fetch_add(local);
    });
  }
  pool.Wait();
  EXPECT_EQ(total.load(), 64LL * 49995000LL);
}

}  // namespace
}  // namespace strr
