// Tests for the trajectory layer: congestion model, store, fleet
// simulator and map matcher.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "tests/test_util.h"
#include "traj/congestion.h"
#include "util/rng.h"
#include "traj/fleet_simulator.h"
#include "traj/map_matcher.h"
#include "traj/trajectory_store.h"

namespace strr {
namespace {

using testing_util::MakeGridNetwork;

// --- CongestionModel ---------------------------------------------------------

TEST(CongestionTest, RushHourSlowerThanMidnight) {
  CongestionModel model;
  for (RoadLevel level :
       {RoadLevel::kHighway, RoadLevel::kArterial, RoadLevel::kLocal}) {
    EXPECT_LT(model.Multiplier(level, HMS(8)), model.Multiplier(level, HMS(1)))
        << RoadLevelName(level);
    EXPECT_LT(model.Multiplier(level, HMS(18)),
              model.Multiplier(level, HMS(13)));
  }
}

TEST(CongestionTest, LocalRoadsHitHarderThanHighways) {
  CongestionModel model;
  EXPECT_LT(model.Multiplier(RoadLevel::kLocal, HMS(8)),
            model.Multiplier(RoadLevel::kHighway, HMS(8)));
  EXPECT_LT(model.Multiplier(RoadLevel::kArterial, HMS(8)),
            model.Multiplier(RoadLevel::kHighway, HMS(8)));
}

TEST(CongestionTest, MultiplierBounded) {
  CongestionModel model;
  for (int64_t t = 0; t < kSecondsPerDay; t += 600) {
    for (RoadLevel level :
         {RoadLevel::kHighway, RoadLevel::kArterial, RoadLevel::kLocal}) {
      double m = model.Multiplier(level, t);
      EXPECT_GT(m, 0.0);
      EXPECT_LE(m, 1.0);
    }
  }
}

TEST(CongestionTest, NightIsBaselineSpeed) {
  // Off-peak speed equals free-flow minus the permanent urban friction.
  CongestionModel model;
  EXPECT_NEAR(model.Multiplier(RoadLevel::kLocal, HMS(2)),
              1.0 - model.local_base_dip, 0.01);
  EXPECT_NEAR(model.ExpectedSpeed(RoadLevel::kLocal, HMS(2)),
              FreeFlowSpeed(RoadLevel::kLocal) * (1.0 - model.local_base_dip),
              0.3);
}

TEST(CongestionTest, BaseDipOrderedByLevel) {
  CongestionModel model;
  EXPECT_LT(model.highway_base_dip, model.arterial_base_dip);
  EXPECT_LT(model.arterial_base_dip, model.local_base_dip);
}

// --- TrajectoryStore ---------------------------------------------------------

TEST(TrajectoryStoreTest, AddValidatesDay) {
  TrajectoryStore store(3);
  MatchedTrajectory t;
  t.day = 5;
  EXPECT_TRUE(store.Add(t).IsInvalidArgument());
  t.day = -1;
  EXPECT_TRUE(store.Add(t).IsInvalidArgument());
  t.day = 2;
  EXPECT_TRUE(store.Add(t).ok());
  EXPECT_EQ(store.TrajectoriesOnDay(2).size(), 1u);
  EXPECT_EQ(store.NumTrajectories(), 1u);
}

TEST(TrajectoryStoreTest, ForEachVisitsAll) {
  TrajectoryStore store(2);
  for (int d = 0; d < 2; ++d) {
    for (int i = 0; i < 3; ++i) {
      MatchedTrajectory t;
      t.id = d * 3 + i;
      t.day = d;
      ASSERT_TRUE(store.Add(std::move(t)).ok());
    }
  }
  std::set<TrajectoryId> seen;
  store.ForEach([&](const MatchedTrajectory& t) { seen.insert(t.id); });
  EXPECT_EQ(seen.size(), 6u);
}

TEST(TrajectoryStoreTest, StatsComputation) {
  TrajectoryStore store(2);
  MatchedTrajectory t;
  t.id = 0;
  t.taxi = 4;
  t.day = 0;
  t.samples = {{0, 100, 10.0f}, {1, 160, 20.0f}};
  ASSERT_TRUE(store.Add(std::move(t)).ok());
  DatasetStats stats = store.ComputeStats();
  EXPECT_EQ(stats.num_days, 2);
  EXPECT_EQ(stats.num_taxis, 5u);  // max taxi id + 1
  EXPECT_EQ(stats.num_trajectories, 1u);
  EXPECT_EQ(stats.num_samples, 2u);
  EXPECT_NEAR(stats.mean_speed_mps, 15.0, 1e-6);
}

// --- FleetSimulator ----------------------------------------------------------

class FleetSimulatorTest : public ::testing::Test {
 protected:
  static const RoadNetwork& Network() {
    static RoadNetwork* net = new RoadNetwork(MakeGridNetwork(6, 6, 400.0));
    return *net;
  }

  static FleetOptions SmallFleet() {
    FleetOptions opt;
    opt.num_taxis = 6;
    opt.num_days = 3;
    opt.trips_per_hour = 2.0;
    opt.seed = 5;
    return opt;
  }
};

TEST_F(FleetSimulatorTest, ProducesTrajectories) {
  auto result = SimulateFleet(Network(), SmallFleet());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->num_trips, 0u);
  EXPECT_GT(result->store->NumTrajectories(), 0u);
  DatasetStats stats = result->store->ComputeStats();
  EXPECT_EQ(stats.num_days, 3);
  EXPECT_LE(stats.num_taxis, 6u);
  EXPECT_GT(stats.num_samples, 100u);
}

TEST_F(FleetSimulatorTest, DeterministicAcrossRuns) {
  auto a = SimulateFleet(Network(), SmallFleet());
  auto b = SimulateFleet(Network(), SmallFleet());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->store->NumTrajectories(), b->store->NumTrajectories());
  ASSERT_EQ(a->num_trips, b->num_trips);
  const auto& ta = a->store->TrajectoriesOnDay(1);
  const auto& tb = b->store->TrajectoriesOnDay(1);
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    ASSERT_EQ(ta[i].samples.size(), tb[i].samples.size());
    for (size_t j = 0; j < ta[i].samples.size(); ++j) {
      EXPECT_EQ(ta[i].samples[j].segment, tb[i].samples[j].segment);
      EXPECT_EQ(ta[i].samples[j].timestamp, tb[i].samples[j].timestamp);
    }
  }
}

TEST_F(FleetSimulatorTest, SamplesAreTimeOrderedAndOnDay) {
  auto result = SimulateFleet(Network(), SmallFleet());
  ASSERT_TRUE(result.ok());
  result->store->ForEach([&](const MatchedTrajectory& t) {
    Timestamp prev = MakeTimestamp(t.day, 0);
    for (const MatchedSample& s : t.samples) {
      EXPECT_GE(s.timestamp, prev);
      EXPECT_EQ(DayOf(s.timestamp), t.day);
      EXPECT_GT(s.speed_mps, 0.0f);
      EXPECT_LT(s.segment, Network().NumSegments());
      prev = s.timestamp;
    }
  });
}

TEST_F(FleetSimulatorTest, ConsecutiveSamplesAreAdjacentInNetwork) {
  auto result = SimulateFleet(Network(), SmallFleet());
  ASSERT_TRUE(result.ok());
  size_t checked = 0, adjacent = 0;
  result->store->ForEach([&](const MatchedTrajectory& t) {
    for (size_t i = 1; i < t.samples.size(); ++i) {
      SegmentId a = t.samples[i - 1].segment;
      SegmentId b = t.samples[i].segment;
      ++checked;
      const auto& out = Network().OutgoingOf(a);
      if (std::find(out.begin(), out.end(), b) != out.end() || a == b) {
        ++adjacent;
      }
    }
  });
  // Within a trip the chain is contiguous; breaks happen only between trips
  // (the taxi "teleports" to its next pickup). Most transitions follow
  // adjacency.
  EXPECT_GT(checked, 0u);
  EXPECT_GT(static_cast<double>(adjacent) / checked, 0.8);
}

TEST_F(FleetSimulatorTest, RushHourSpeedsSlower) {
  FleetOptions opt = SmallFleet();
  opt.num_taxis = 20;
  opt.num_days = 4;
  auto result = SimulateFleet(Network(), opt);
  ASSERT_TRUE(result.ok());
  double rush_sum = 0, night_sum = 0;
  int rush_n = 0, night_n = 0;
  result->store->ForEach([&](const MatchedTrajectory& t) {
    for (const MatchedSample& s : t.samples) {
      int64_t tod = TimeOfDay(s.timestamp);
      if (tod >= HMS(7, 30) && tod <= HMS(8, 30)) {
        rush_sum += s.speed_mps;
        ++rush_n;
      } else if (tod >= HMS(12, 30) && tod <= HMS(14, 30)) {
        night_sum += s.speed_mps;
        ++night_n;
      }
    }
  });
  ASSERT_GT(rush_n, 20);
  ASSERT_GT(night_n, 20);
  EXPECT_LT(rush_sum / rush_n, 0.75 * (night_sum / night_n));
}

TEST_F(FleetSimulatorTest, RawGpsEmittedOnRequest) {
  auto result = SimulateFleet(Network(), SmallFleet(), /*raw_days=*/1);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->raw_sample.empty());
  for (const RawTrajectory& raw : result->raw_sample) {
    EXPECT_EQ(raw.day, 0);
    EXPECT_FALSE(raw.points.empty());
    for (size_t i = 1; i < raw.points.size(); ++i) {
      EXPECT_GE(raw.points[i].timestamp, raw.points[i - 1].timestamp);
    }
  }
}

TEST_F(FleetSimulatorTest, RejectsBadOptions) {
  FleetOptions opt = SmallFleet();
  opt.num_days = 0;
  EXPECT_TRUE(SimulateFleet(Network(), opt).status().IsInvalidArgument());
  opt = SmallFleet();
  opt.num_taxis = 0;
  EXPECT_TRUE(SimulateFleet(Network(), opt).status().IsInvalidArgument());
  RoadNetwork unfinalized;
  EXPECT_TRUE(
      SimulateFleet(unfinalized, SmallFleet()).status().IsFailedPrecondition());
}

// --- MapMatcher --------------------------------------------------------------

class MapMatcherTest : public ::testing::Test {
 protected:
  static const RoadNetwork& Network() {
    static RoadNetwork* net = new RoadNetwork(MakeGridNetwork(5, 5, 400.0));
    return *net;
  }
};

TEST_F(MapMatcherTest, CleanGpsRecoversRoute) {
  // Walk along the bottom row: points exactly on the road.
  const RoadNetwork& net = Network();
  RawTrajectory raw;
  raw.id = 1;
  raw.day = 0;
  for (int i = 0; i <= 16; ++i) {
    raw.points.push_back(
        {{i * 100.0, 0.0}, MakeTimestamp(0, HMS(10) + i * 15), 8.0});
  }
  MapMatcher matcher(net);
  auto matched = matcher.Match(raw);
  ASSERT_TRUE(matched.ok());
  ASSERT_FALSE(matched->samples.empty());
  // Every matched segment must lie on the bottom row (y == 0 for all its
  // shape points).
  for (const MatchedSample& s : matched->samples) {
    for (const XyPoint& p : net.segment(s.segment).shape.points()) {
      EXPECT_NEAR(p.y, 0.0, 1e-9) << "matched off-route segment " << s.segment;
    }
  }
}

TEST_F(MapMatcherTest, NoisyGpsStaysNearRoute) {
  const RoadNetwork& net = Network();
  Rng rng(3);
  RawTrajectory raw;
  raw.id = 2;
  raw.day = 0;
  for (int i = 0; i <= 16; ++i) {
    raw.points.push_back({{i * 100.0 + rng.Gaussian(0, 15.0),
                           rng.Gaussian(0, 15.0)},
                          MakeTimestamp(0, HMS(10) + i * 15),
                          8.0});
  }
  MapMatcher matcher(net);
  auto matched = matcher.Match(raw);
  ASSERT_TRUE(matched.ok());
  ASSERT_FALSE(matched->samples.empty());
  int on_row = 0;
  for (const MatchedSample& s : matched->samples) {
    bool bottom = true;
    for (const XyPoint& p : net.segment(s.segment).shape.points()) {
      if (std::abs(p.y) > 1.0) bottom = false;
    }
    if (bottom) ++on_row;
  }
  EXPECT_GE(on_row * 1.0 / matched->samples.size(), 0.7);
}

TEST_F(MapMatcherTest, EmptyTrajectory) {
  MapMatcher matcher(Network());
  RawTrajectory raw;
  raw.id = 3;
  auto matched = matcher.Match(raw);
  ASSERT_TRUE(matched.ok());
  EXPECT_TRUE(matched->samples.empty());
  EXPECT_EQ(matched->id, 3u);
}

TEST_F(MapMatcherTest, PointsFarFromNetworkDropped) {
  MapMatcher matcher(Network());
  RawTrajectory raw;
  raw.id = 4;
  raw.points.push_back({{50000.0, 50000.0}, MakeTimestamp(0, HMS(9)), 5.0});
  auto matched = matcher.Match(raw);
  ASSERT_TRUE(matched.ok());
  EXPECT_TRUE(matched->samples.empty());
}

TEST_F(MapMatcherTest, ConsecutiveDuplicatesCollapsed) {
  MapMatcher matcher(Network());
  RawTrajectory raw;
  raw.id = 5;
  // Five points on the same segment.
  for (int i = 0; i < 5; ++i) {
    raw.points.push_back(
        {{30.0 + i * 10.0, 0.0}, MakeTimestamp(0, HMS(9) + i * 10), 5.0});
  }
  auto matched = matcher.Match(raw);
  ASSERT_TRUE(matched.ok());
  EXPECT_EQ(matched->samples.size(), 1u);
}

TEST_F(MapMatcherTest, MatchedTimestampsPreserved) {
  MapMatcher matcher(Network());
  RawTrajectory raw;
  raw.id = 6;
  raw.day = 2;
  raw.points.push_back({{10.0, 0.0}, MakeTimestamp(2, HMS(9)), 5.0});
  raw.points.push_back({{410.0, 0.0}, MakeTimestamp(2, HMS(9, 1)), 5.0});
  auto matched = matcher.Match(raw);
  ASSERT_TRUE(matched.ok());
  ASSERT_GE(matched->samples.size(), 1u);
  EXPECT_EQ(matched->samples.front().timestamp, MakeTimestamp(2, HMS(9)));
  EXPECT_EQ(matched->day, 2);
}

// End-to-end: simulator's raw GPS -> matcher -> close to ground truth.
TEST_F(MapMatcherTest, SimulatorRawGpsMatchesGroundTruthSegments) {
  const RoadNetwork& net = Network();
  FleetOptions opt;
  opt.num_taxis = 3;
  opt.num_days = 1;
  opt.trips_per_hour = 1.0;
  opt.gps_noise_std_m = 10.0;
  opt.seed = 9;
  auto result = SimulateFleet(net, opt, /*raw_days=*/1);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->raw_sample.empty());

  MapMatcher matcher(net);
  size_t total_matched = 0, in_truth = 0;
  for (const RawTrajectory& raw : result->raw_sample) {
    // Find the ground-truth trajectory with the same id.
    const MatchedTrajectory* truth = nullptr;
    for (const auto& t : result->store->TrajectoriesOnDay(0)) {
      if (t.id == raw.id) truth = &t;
    }
    ASSERT_NE(truth, nullptr);
    std::set<SegmentId> truth_segs;
    for (const MatchedSample& s : truth->samples) {
      truth_segs.insert(s.segment);
      // Accept the twin too: GPS cannot distinguish directions on offset-
      // free two-way geometry.
      SegmentId twin = net.segment(s.segment).reverse_id;
      if (twin != kInvalidSegment) truth_segs.insert(twin);
    }
    auto matched = matcher.Match(raw);
    ASSERT_TRUE(matched.ok());
    for (const MatchedSample& s : matched->samples) {
      ++total_matched;
      if (truth_segs.count(s.segment)) ++in_truth;
    }
  }
  ASSERT_GT(total_matched, 10u);
  EXPECT_GT(static_cast<double>(in_truth) / total_matched, 0.75);
}

}  // namespace
}  // namespace strr
