// Tests for the query layer: probability (Eq. 3.1), SQMB/MQMB bounding
// regions, TBS, and the ES baseline — validated against brute-force
// recomputation from the trajectory store.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "query/bounding_region.h"
#include "query/es_baseline.h"
#include "query/probability.h"
#include "query/trace_back.h"
#include "tests/test_util.h"

namespace strr {
namespace {

using testing_util::GetSharedStack;
using testing_util::MakeGridNetwork;

// --- SortedIntersects --------------------------------------------------------

TEST(SortedIntersectsTest, Basics) {
  EXPECT_TRUE(SortedIntersects({1, 3, 5}, {5, 7}));
  EXPECT_TRUE(SortedIntersects({5}, {1, 2, 5}));
  EXPECT_FALSE(SortedIntersects({1, 3}, {2, 4}));
  EXPECT_FALSE(SortedIntersects({}, {1}));
  EXPECT_FALSE(SortedIntersects({}, {}));
  EXPECT_TRUE(SortedIntersects({2, 2, 2}, {2}));
}

// --- Probability (Eq. 3.1) vs brute force ------------------------------------

/// Brute-force probability straight from the matched store: fraction of
/// days with a trajectory passing `start` in [T, T+window) and `target`
/// in [T, T+duration].
double BruteForceProbability(const TrajectoryStore& store, SegmentId start,
                             SegmentId target, int64_t T, int64_t window,
                             int64_t duration) {
  int hits = 0;
  for (DayIndex d = 0; d < store.num_days(); ++d) {
    std::set<TrajectoryId> from_start, at_target;
    for (const MatchedTrajectory& t : store.TrajectoriesOnDay(d)) {
      for (const MatchedSample& s : t.samples) {
        int64_t tod = TimeOfDay(s.timestamp);
        if (s.segment == start && tod >= T && tod < T + window) {
          from_start.insert(t.id);
        }
        if (s.segment == target && tod >= T && tod <= T + duration) {
          at_target.insert(t.id);
        }
      }
    }
    for (TrajectoryId id : from_start) {
      if (at_target.count(id)) {
        ++hits;
        break;
      }
    }
  }
  return store.num_days() > 0 ? static_cast<double>(hits) / store.num_days()
                              : 0.0;
}

TEST(ProbabilityTest, MatchesBruteForceOnSharedDataset) {
  auto& stack = GetSharedStack();
  const StIndex& index = stack.engine->st_index();
  const TrajectoryStore& store = *stack.dataset.store;
  const int64_t T = HMS(11);
  const int64_t delta_t = index.slot_seconds();
  const int64_t L = 600;

  // Pick a start segment with traffic at 11:00.
  SegmentId start = kInvalidSegment;
  SlotId slot = index.SlotForTime(T);
  for (SegmentId s = 0; s < index.network().NumSegments(); ++s) {
    if (index.HasTraffic(s, slot)) {
      start = s;
      break;
    }
  }
  ASSERT_NE(start, kInvalidSegment) << "dataset has no 11:00 traffic";

  auto oracle =
      ReachabilityProbability::Create(index, {start}, T, delta_t, L);
  ASSERT_TRUE(oracle.ok());
  // Note: the ST-Index quantizes the start window and the duration to Δt
  // slots, so compare against a brute force using slot-aligned boundaries.
  int64_t t_aligned = (T / delta_t) * delta_t;
  int64_t end_slot_aligned =
      ((T + L - 1) / delta_t + 1) * delta_t - 1;  // end of last covered slot
  int checked = 0;
  for (SegmentId target = 0; target < index.network().NumSegments();
       target += 17) {
    auto p = oracle->Probability(target);
    ASSERT_TRUE(p.ok());
    double expected =
        BruteForceProbability(store, start, target, t_aligned, delta_t,
                              end_slot_aligned - t_aligned);
    EXPECT_NEAR(*p, expected, 1e-9) << "target " << target;
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

TEST(ProbabilityTest, StartWithNoTrafficGivesZero) {
  auto& stack = GetSharedStack();
  const StIndex& index = stack.engine->st_index();
  // 03:30 in a quiet corner: find a segment with no traffic.
  SlotId slot = index.SlotForTime(HMS(3, 30));
  SegmentId quiet = kInvalidSegment;
  for (SegmentId s = 0; s < index.network().NumSegments(); ++s) {
    if (!index.HasTraffic(s, slot)) {
      quiet = s;
      break;
    }
  }
  ASSERT_NE(quiet, kInvalidSegment);
  auto oracle = ReachabilityProbability::Create(index, {quiet}, HMS(3, 30),
                                                index.slot_seconds(), 600);
  ASSERT_TRUE(oracle.ok());
  EXPECT_TRUE(oracle->StartHasNoTraffic());
  auto p = oracle->Probability(0);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 0.0);
}

TEST(ProbabilityTest, CreateValidation) {
  auto& stack = GetSharedStack();
  const StIndex& index = stack.engine->st_index();
  EXPECT_FALSE(
      ReachabilityProbability::Create(index, {}, HMS(10), 300, 600).ok());
  EXPECT_FALSE(
      ReachabilityProbability::Create(index, {0}, HMS(10), 0, 600).ok());
  EXPECT_FALSE(
      ReachabilityProbability::Create(index, {0}, HMS(10), 300, -5).ok());
}

// --- RegionBoundary ----------------------------------------------------------

TEST(RegionBoundaryTest, InteriorExcluded) {
  RoadNetwork net = MakeGridNetwork(5, 5, 100.0);
  // Region = every segment: no outside neighbours, boundary empty.
  std::vector<SegmentId> all;
  for (SegmentId s = 0; s < net.NumSegments(); ++s) all.push_back(s);
  EXPECT_TRUE(RegionBoundary(net, all).empty());
}

TEST(RegionBoundaryTest, PartialRegionHasBoundary) {
  RoadNetwork net = MakeGridNetwork(7, 7, 100.0);
  // Region: every segment fully inside the [100, 500]^2 window — a 5x5
  // sub-grid whose central segments are interior (all neighbours inside).
  std::vector<SegmentId> region;
  for (const RoadSegment& seg : net.segments()) {
    const Mbr& box = seg.bounding_box();
    if (box.min_x() >= 99.0 && box.max_x() <= 501.0 && box.min_y() >= 99.0 &&
        box.max_y() <= 501.0) {
      region.push_back(seg.id);
    }
  }
  ASSERT_GT(region.size(), 20u);
  auto boundary = RegionBoundary(net, region);
  EXPECT_FALSE(boundary.empty());
  EXPECT_LT(boundary.size(), region.size());
  // Every boundary member is in the region and has an outside neighbour.
  std::set<SegmentId> in(region.begin(), region.end());
  for (SegmentId b : boundary) {
    EXPECT_TRUE(in.count(b));
    bool outside = false;
    for (SegmentId nb : net.NeighborsOf(b)) {
      if (!in.count(nb)) outside = true;
    }
    EXPECT_TRUE(outside);
  }
}

// --- SQMB --------------------------------------------------------------------

class SqmbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& stack = GetSharedStack();
    engine_ = stack.engine.get();
    net_ = &engine_->network();
    auto start = engine_->st_index().LocateSegment(stack.dataset.center);
    ASSERT_TRUE(start.ok());
    start_ = *start;
  }

  ReachabilityEngine* engine_;
  const RoadNetwork* net_;
  SegmentId start_;
};

TEST_F(SqmbTest, MinRegionInsideMaxRegion) {
  auto regions = SqmbSearch(*net_, engine_->con_index(), start_, HMS(11), 600);
  ASSERT_TRUE(regions.ok());
  EXPECT_FALSE(regions->max_region.empty());
  EXPECT_FALSE(regions->min_region.empty());
  EXPECT_TRUE(std::includes(regions->max_region.begin(),
                            regions->max_region.end(),
                            regions->min_region.begin(),
                            regions->min_region.end()));
}

TEST_F(SqmbTest, StartInsideBothRegions) {
  auto regions = SqmbSearch(*net_, engine_->con_index(), start_, HMS(11), 600);
  ASSERT_TRUE(regions.ok());
  EXPECT_TRUE(std::binary_search(regions->max_region.begin(),
                                 regions->max_region.end(), start_));
  EXPECT_TRUE(std::binary_search(regions->min_region.begin(),
                                 regions->min_region.end(), start_));
}

TEST_F(SqmbTest, MonotoneInDuration) {
  auto small = SqmbSearch(*net_, engine_->con_index(), start_, HMS(11), 300);
  auto large = SqmbSearch(*net_, engine_->con_index(), start_, HMS(11), 1200);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(large->max_region.size(), small->max_region.size());
  EXPECT_TRUE(std::includes(large->max_region.begin(), large->max_region.end(),
                            small->max_region.begin(),
                            small->max_region.end()));
}

TEST_F(SqmbTest, BoundarySeedsAreValid) {
  auto regions = SqmbSearch(*net_, engine_->con_index(), start_, HMS(11), 600);
  ASSERT_TRUE(regions.ok());
  // The TBS seed set is always inside the max region.
  EXPECT_TRUE(std::includes(regions->max_region.begin(),
                            regions->max_region.end(),
                            regions->boundary.begin(),
                            regions->boundary.end()));
  // When the cone has a geometric edge, the seed IS that edge; otherwise
  // (cone saturated the network) it falls back to the outermost expansion
  // shell, which is non-empty whenever the region is.
  auto geometric = RegionBoundary(*net_, regions->max_region);
  if (!geometric.empty()) {
    EXPECT_EQ(regions->boundary, geometric);
  } else {
    EXPECT_FALSE(regions->boundary.empty());
  }
}

TEST_F(SqmbTest, RushHourRegionSmallerThanMidday) {
  auto rush = SqmbSearch(*net_, engine_->con_index(), start_, HMS(8), 600);
  auto midday = SqmbSearch(*net_, engine_->con_index(), start_, HMS(13), 600);
  ASSERT_TRUE(rush.ok());
  ASSERT_TRUE(midday.ok());
  EXPECT_LT(rush->max_region.size(), midday->max_region.size());
}

TEST_F(SqmbTest, InputValidation) {
  EXPECT_FALSE(SqmbSearch(*net_, engine_->con_index(), kInvalidSegment,
                          HMS(11), 600)
                   .ok());
  EXPECT_FALSE(
      SqmbSearch(*net_, engine_->con_index(), start_, HMS(11), 0).ok());
}

// --- MQMB --------------------------------------------------------------------

TEST_F(SqmbTest, MqmbSingleLocationMatchesSqmbCone) {
  auto s = SqmbSearch(*net_, engine_->con_index(), start_, HMS(10), 600);
  auto m = MqmbSearch(*net_, engine_->con_index(), engine_->speed_profile(),
                      {start_}, HMS(10), 600);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(s->max_region, m->max_region);
  EXPECT_EQ(s->min_region, m->min_region);
}

TEST_F(SqmbTest, MqmbUnionCoversEachStartsNeighbourhood) {
  // Pick a second start well away from the first.
  auto& stack = GetSharedStack();
  Mbr box = net_->BoundingBox();
  auto second = engine_->st_index().LocateSegment(
      {box.min_x() + box.Width() * 0.25, box.min_y() + box.Height() * 0.25});
  ASSERT_TRUE(second.ok());
  auto m = MqmbSearch(*net_, engine_->con_index(), engine_->speed_profile(),
                      {start_, *second}, HMS(10), 600);
  ASSERT_TRUE(m.ok());
  // Both starts present.
  EXPECT_TRUE(std::binary_search(m->max_region.begin(), m->max_region.end(),
                                 start_));
  EXPECT_TRUE(std::binary_search(m->max_region.begin(), m->max_region.end(),
                                 *second));
  // Union at least as large as each single cone.
  auto s1 = SqmbSearch(*net_, engine_->con_index(), start_, HMS(10), 600);
  auto s2 = SqmbSearch(*net_, engine_->con_index(), *second, HMS(10), 600);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_GE(m->max_region.size(),
            std::max(s1->max_region.size(), s2->max_region.size()));
  (void)stack;
}

TEST_F(SqmbTest, MqmbDeduplicatesStarts) {
  auto m = MqmbSearch(*net_, engine_->con_index(), engine_->speed_profile(),
                      {start_, start_, start_}, HMS(10), 600);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->start_segments.size(), 1u);
}

TEST_F(SqmbTest, MqmbValidation) {
  EXPECT_FALSE(MqmbSearch(*net_, engine_->con_index(),
                          engine_->speed_profile(), {}, HMS(10), 600)
                   .ok());
  EXPECT_FALSE(MqmbSearch(*net_, engine_->con_index(),
                          engine_->speed_profile(), {kInvalidSegment}, HMS(10),
                          600)
                   .ok());
}

// --- TBS + ES invariants -----------------------------------------------------

TEST_F(SqmbTest, EsRegionSubsetOfTbsRegion) {
  // Every segment ES verifies as Prob-reachable must appear in the
  // SQMB+TBS region (TBS additionally trusts the unverified interior).
  auto& stack = GetSharedStack();
  SQuery q{stack.dataset.center, HMS(11), 600, 0.3};
  auto indexed = engine_->SQueryIndexed(q);
  auto exhaustive = engine_->SQueryExhaustive(q);
  ASSERT_TRUE(indexed.ok());
  ASSERT_TRUE(exhaustive.ok());
  EXPECT_TRUE(std::includes(
      indexed->segments.begin(), indexed->segments.end(),
      exhaustive->segments.begin(), exhaustive->segments.end()))
      << "ES found a qualifying segment TBS rejected";
}

TEST_F(SqmbTest, TbsVerifiesFewerSegmentsThanEs) {
  auto& stack = GetSharedStack();
  SQuery q{stack.dataset.center, HMS(11), 900, 0.2};
  auto indexed = engine_->SQueryIndexed(q);
  auto exhaustive = engine_->SQueryExhaustive(q);
  ASSERT_TRUE(indexed.ok());
  ASSERT_TRUE(exhaustive.ok());
  EXPECT_LT(indexed->stats.segments_verified,
            exhaustive->stats.segments_verified);
}

TEST_F(SqmbTest, TbsRegionWithinMaxCone) {
  auto regions = SqmbSearch(*net_, engine_->con_index(), start_, HMS(11), 600);
  ASSERT_TRUE(regions.ok());
  auto oracle = ReachabilityProbability::Create(
      engine_->st_index(), regions->start_segments, HMS(11),
      engine_->delta_t_seconds(), 600);
  ASSERT_TRUE(oracle.ok());
  auto tbs = TraceBackSearch(*net_, *regions, 0.2, *oracle);
  ASSERT_TRUE(tbs.ok());
  EXPECT_TRUE(std::includes(regions->max_region.begin(),
                            regions->max_region.end(), tbs->region.begin(),
                            tbs->region.end()));
}

TEST_F(SqmbTest, HigherProbNeverGrowsRegion) {
  auto& stack = GetSharedStack();
  SQuery low{stack.dataset.center, HMS(11), 600, 0.2};
  SQuery high{stack.dataset.center, HMS(11), 600, 0.9};
  auto r_low = engine_->SQueryIndexed(low);
  auto r_high = engine_->SQueryIndexed(high);
  ASSERT_TRUE(r_low.ok());
  ASSERT_TRUE(r_high.ok());
  EXPECT_LE(r_high->total_length_m, r_low->total_length_m);
}

TEST_F(SqmbTest, TbsRejectsBadProb) {
  auto regions = SqmbSearch(*net_, engine_->con_index(), start_, HMS(11), 600);
  ASSERT_TRUE(regions.ok());
  auto oracle = ReachabilityProbability::Create(
      engine_->st_index(), regions->start_segments, HMS(11),
      engine_->delta_t_seconds(), 600);
  ASSERT_TRUE(oracle.ok());
  EXPECT_FALSE(TraceBackSearch(*net_, *regions, 0.0, *oracle).ok());
  EXPECT_FALSE(TraceBackSearch(*net_, *regions, 1.5, *oracle).ok());
}

}  // namespace
}  // namespace strr
