// Tests for dataset persistence (save -> load round trip + corruption).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/persist.h"
#include "tests/test_util.h"

namespace strr {
namespace {

using testing_util::MakeGridNetwork;
using testing_util::MakeTempDir;

TEST(PersistNetworkTest, RoundTripGrid) {
  RoadNetwork net = MakeGridNetwork(3, 4, 250.0);
  auto restored = DeserializeNetwork(SerializeNetwork(net));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->NumNodes(), net.NumNodes());
  ASSERT_EQ(restored->NumSegments(), net.NumSegments());
  EXPECT_TRUE(restored->finalized());
  for (SegmentId i = 0; i < net.NumSegments(); ++i) {
    const RoadSegment& a = net.segment(i);
    const RoadSegment& b = restored->segment(i);
    EXPECT_EQ(a.from_node, b.from_node);
    EXPECT_EQ(a.to_node, b.to_node);
    EXPECT_EQ(a.level, b.level);
    EXPECT_EQ(a.two_way, b.two_way);
    EXPECT_EQ(a.reverse_id, b.reverse_id);
    EXPECT_DOUBLE_EQ(a.length, b.length);
    ASSERT_EQ(a.shape.NumPoints(), b.shape.NumPoints());
  }
  // Adjacency rebuilt identically.
  for (SegmentId i = 0; i < net.NumSegments(); ++i) {
    EXPECT_EQ(restored->OutgoingOf(i), net.OutgoingOf(i));
    EXPECT_EQ(restored->NeighborsOf(i), net.NeighborsOf(i));
  }
}

TEST(PersistNetworkTest, GarbageRejected) {
  EXPECT_TRUE(DeserializeNetwork("short").status().IsCorruption());
  std::string bytes = SerializeNetwork(MakeGridNetwork(2, 2));
  bytes[0] ^= 0xFF;  // break the magic
  EXPECT_TRUE(DeserializeNetwork(bytes).status().IsCorruption());
  bytes = SerializeNetwork(MakeGridNetwork(2, 2));
  bytes.resize(bytes.size() / 2);  // truncate
  EXPECT_FALSE(DeserializeNetwork(bytes).ok());
}

TEST(PersistDatasetTest, RoundTripFullDataset) {
  DatasetOptions opt = TestDatasetOptions();
  opt.fleet.num_taxis = 10;
  opt.fleet.num_days = 3;
  auto dataset = BuildDataset(opt);
  ASSERT_TRUE(dataset.ok());
  std::string dir = MakeTempDir("persist");
  ASSERT_TRUE(SaveDataset(*dataset, dir).ok());

  auto loaded = LoadDataset(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->network.NumSegments(), dataset->network.NumSegments());
  EXPECT_EQ(loaded->store->num_days(), dataset->store->num_days());
  EXPECT_EQ(loaded->store->NumTrajectories(),
            dataset->store->NumTrajectories());
  EXPECT_EQ(loaded->num_trips, dataset->num_trips);
  EXPECT_DOUBLE_EQ(loaded->center.x, dataset->center.x);
  EXPECT_DOUBLE_EQ(loaded->projection.origin().lat,
                   dataset->projection.origin().lat);

  // Spot-check trajectory contents (timestamps and speeds survive the
  // delta/quantized encoding).
  const auto& orig = dataset->store->TrajectoriesOnDay(1);
  const auto& got = loaded->store->TrajectoriesOnDay(1);
  ASSERT_EQ(orig.size(), got.size());
  for (size_t i = 0; i < orig.size(); ++i) {
    ASSERT_EQ(orig[i].samples.size(), got[i].samples.size());
    EXPECT_EQ(orig[i].id, got[i].id);
    EXPECT_EQ(orig[i].taxi, got[i].taxi);
    for (size_t k = 0; k < orig[i].samples.size(); ++k) {
      EXPECT_EQ(orig[i].samples[k].segment, got[i].samples[k].segment);
      EXPECT_EQ(orig[i].samples[k].timestamp, got[i].samples[k].timestamp);
      EXPECT_NEAR(orig[i].samples[k].speed_mps, got[i].samples[k].speed_mps,
                  0.01);
    }
  }
}

TEST(PersistDatasetTest, LoadedDatasetAnswersQueries) {
  DatasetOptions opt = TestDatasetOptions();
  opt.fleet.num_taxis = 15;
  opt.fleet.num_days = 4;
  auto dataset = BuildDataset(opt);
  ASSERT_TRUE(dataset.ok());
  std::string dir = MakeTempDir("persistq");
  ASSERT_TRUE(SaveDataset(*dataset, dir).ok());
  auto loaded = LoadDataset(dir);
  ASSERT_TRUE(loaded.ok());

  EngineOptions eopt;
  eopt.work_dir = MakeTempDir("persistq_engine");
  auto engine =
      ReachabilityEngine::Build(loaded->network, *loaded->store, eopt);
  ASSERT_TRUE(engine.ok());
  SQuery q{loaded->center, HMS(11), 600, 0.2};
  auto result = (*engine)->SQueryIndexed(q);
  ASSERT_TRUE(result.ok());

  // Identical to the result over the original dataset.
  EngineOptions eopt2;
  eopt2.work_dir = MakeTempDir("persistq_engine2");
  auto engine2 =
      ReachabilityEngine::Build(dataset->network, *dataset->store, eopt2);
  ASSERT_TRUE(engine2.ok());
  auto result2 = (*engine2)->SQueryIndexed(q);
  ASSERT_TRUE(result2.ok());
  EXPECT_EQ(result->segments, result2->segments);
}

TEST(PersistDatasetTest, MissingDirFails) {
  EXPECT_TRUE(LoadDataset("/nonexistent_dir_xyz").status().IsIoError());
}

TEST(PersistDatasetTest, CorruptTrajectoryFileFails) {
  DatasetOptions opt = TestDatasetOptions();
  opt.fleet.num_taxis = 4;
  opt.fleet.num_days = 2;
  auto dataset = BuildDataset(opt);
  ASSERT_TRUE(dataset.ok());
  std::string dir = MakeTempDir("persistc");
  ASSERT_TRUE(SaveDataset(*dataset, dir).ok());
  // Saves are versioned now: find the committed trajectories file by
  // prefix instead of assuming a fixed name.
  std::string traj_path;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("trajectories", 0) == 0) traj_path = entry.path().string();
  }
  ASSERT_FALSE(traj_path.empty());
  {
    std::ofstream out(traj_path, std::ios::binary | std::ios::trunc);
    out << "not a trajectory file";
  }
  auto loaded = LoadDataset(dir);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status().ToString();
}

}  // namespace
}  // namespace strr
