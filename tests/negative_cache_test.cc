// NegativeCache unit tests: TTL expiry on an injected clock, LRU bounding,
// and the only-failures contract. Engine-facade integration (NotFound
// planner results served from the cache) lives in live_ingestion_test.cc,
// which already builds a front-door-enabled engine.
#include "core/negative_cache.h"

#include <gtest/gtest.h>

#include <string>

namespace strr {
namespace {

NegativeCacheOptions WithFakeClock(int64_t* now_ms, size_t capacity = 8,
                                   int64_t ttl_ms = 100) {
  NegativeCacheOptions opt;
  opt.capacity = capacity;
  opt.ttl_ms = ttl_ms;
  opt.now_ms = [now_ms] { return *now_ms; };
  return opt;
}

TEST(NegativeCacheTest, MissThenHit) {
  int64_t now = 0;
  NegativeCache cache(WithFakeClock(&now));
  EXPECT_FALSE(cache.Lookup("k").has_value());
  cache.Insert("k", Status::NotFound("no segment near location"));
  auto hit = cache.Lookup("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->IsNotFound());
  EXPECT_EQ(hit->message(), "no segment near location");
  NegativeCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(NegativeCacheTest, EntriesExpireAfterTtl) {
  int64_t now = 0;
  NegativeCache cache(WithFakeClock(&now, /*capacity=*/8, /*ttl_ms=*/100));
  cache.Insert("k", Status::NotFound("x"));
  now = 99;
  EXPECT_TRUE(cache.Lookup("k").has_value());
  now = 100;  // expiry is inclusive at now >= expires
  EXPECT_FALSE(cache.Lookup("k").has_value());
  EXPECT_EQ(cache.stats().expired, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(NegativeCacheTest, ReinsertRefreshesTtl) {
  int64_t now = 0;
  NegativeCache cache(WithFakeClock(&now, 8, 100));
  cache.Insert("k", Status::NotFound("x"));
  now = 80;
  cache.Insert("k", Status::NotFound("y"));  // refresh
  now = 150;  // original would have expired at 100; refresh pushed to 180
  auto hit = cache.Lookup("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->message(), "y");
}

TEST(NegativeCacheTest, CapacityEvictsLru) {
  int64_t now = 0;
  NegativeCache cache(WithFakeClock(&now, /*capacity=*/3));
  cache.Insert("a", Status::NotFound("a"));
  cache.Insert("b", Status::NotFound("b"));
  cache.Insert("c", Status::NotFound("c"));
  EXPECT_TRUE(cache.Lookup("a").has_value());  // refresh a -> b is LRU
  cache.Insert("d", Status::NotFound("d"));    // evicts b
  EXPECT_FALSE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
  EXPECT_TRUE(cache.Lookup("d").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(NegativeCacheTest, OkStatusIsNeverCached) {
  int64_t now = 0;
  NegativeCache cache(WithFakeClock(&now));
  cache.Insert("k", Status::OK());
  EXPECT_FALSE(cache.Lookup("k").has_value());
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(NegativeCacheTest, DistinctKeysDoNotCollide) {
  int64_t now = 0;
  NegativeCache cache(WithFakeClock(&now));
  cache.Insert("a", Status::NotFound("for a"));
  cache.Insert("b", Status::InvalidArgument("for b"));
  EXPECT_EQ(cache.Lookup("a")->message(), "for a");
  EXPECT_TRUE(cache.Lookup("b")->IsInvalidArgument());
}

}  // namespace
}  // namespace strr
