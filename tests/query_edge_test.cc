// Edge-case and failure-injection tests for the query layer: empty
// traffic, degenerate networks, corrupted index files, saturated cones,
// and hand-computable probability fixtures.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "core/reachability_engine.h"
#include "index/con_index.h"
#include "index/st_index.h"
#include "query/bounding_region.h"
#include "query/probability.h"
#include "query/trace_back.h"
#include "tests/test_util.h"

namespace strr {
namespace {

using testing_util::MakeChainNetwork;
using testing_util::MakeGridNetwork;
using testing_util::MakeTempDir;

/// Builds a store where taxi `t` (one per day d in `days`) drives the
/// chain 0..n-1 starting at `start_tod`, one segment per 30 seconds.
std::unique_ptr<TrajectoryStore> ChainStore(int num_days,
                                            const std::vector<int>& days,
                                            int chain_length,
                                            int64_t start_tod) {
  auto store = std::make_unique<TrajectoryStore>(num_days);
  TrajectoryId id = 0;
  for (int d : days) {
    MatchedTrajectory t;
    t.id = id++;
    t.taxi = t.id;
    t.day = d;
    for (int i = 0; i < chain_length; ++i) {
      t.samples.push_back({static_cast<SegmentId>(i),
                           MakeTimestamp(d, start_tod + i * 30), 10.0f});
    }
    EXPECT_TRUE(store->Add(std::move(t)).ok());
  }
  return store;
}

class ChainQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = MakeChainNetwork(10, 300.0);  // 10 segments of 300 m
  }

  std::unique_ptr<StIndex> BuildIndex(const TrajectoryStore& store) {
    StIndexOptions opt;
    opt.slot_seconds = 300;
    opt.posting_path = MakeTempDir("chainq") + "/p.bin";
    auto index = StIndex::Build(net_, store, opt);
    EXPECT_TRUE(index.ok());
    return std::move(*index);
  }

  RoadNetwork net_;
};

TEST_F(ChainQueryTest, ProbabilityExactlyMatchesDayFractions) {
  // Taxis on days {0, 2, 4} of 6: every chain segment is reached on
  // exactly 3 of 6 days -> probability 0.5.
  auto store = ChainStore(6, {0, 2, 4}, 10, HMS(9));
  auto index = BuildIndex(*store);
  auto oracle =
      ReachabilityProbability::Create(*index, {0}, HMS(9), 300, 600);
  ASSERT_TRUE(oracle.ok());
  for (SegmentId s = 0; s < 10; ++s) {
    auto p = oracle->Probability(s);
    ASSERT_TRUE(p.ok());
    EXPECT_DOUBLE_EQ(*p, 0.5) << "segment " << s;
  }
  // Unvisited far-away segment: 0.
  EXPECT_DOUBLE_EQ(*oracle->Probability(9), 0.5);
}

TEST_F(ChainQueryTest, ProbabilityRespectsDurationWindow) {
  // The taxi reaches segment i at start+30*i seconds. With L=120s the
  // candidate slots cover [T, T+300) (one Δt slot) — all of the chain's
  // samples land inside the first slot, so quantization includes them.
  // With a 1-minute index the window is honoured much more tightly.
  auto store = ChainStore(4, {0, 1, 2, 3}, 10, HMS(9));
  StIndexOptions opt;
  opt.slot_seconds = 60;
  opt.posting_path = MakeTempDir("chainq60") + "/p.bin";
  auto index = StIndex::Build(net_, *store, opt);
  ASSERT_TRUE(index.ok());
  // L = 120 s: segments entered at offsets 0..120 s qualify (i <= 4).
  auto oracle =
      ReachabilityProbability::Create(**index, {0}, HMS(9), 60, 120);
  ASSERT_TRUE(oracle.ok());
  EXPECT_DOUBLE_EQ(*oracle->Probability(3), 1.0);   // entered at 90 s
  EXPECT_DOUBLE_EQ(*oracle->Probability(8), 0.0);   // entered at 240 s
}

TEST_F(ChainQueryTest, StartWindowExcludesLateCrossers) {
  // Taxi crosses segment 0 at 09:10, outside the [09:00, 09:05) window.
  auto store = ChainStore(3, {0, 1, 2}, 10, HMS(9, 10));
  auto index = BuildIndex(*store);
  auto oracle =
      ReachabilityProbability::Create(*index, {0}, HMS(9), 300, 1200);
  ASSERT_TRUE(oracle.ok());
  EXPECT_TRUE(oracle->StartHasNoTraffic());
  EXPECT_DOUBLE_EQ(*oracle->Probability(5), 0.0);
}

TEST_F(ChainQueryTest, MultiStartUnionsTrajectories) {
  // Day 0 taxi starts at segment 0; day 1 taxi "starts" mid-chain at 4
  // (simulate by separate stores merged): here both days drive the whole
  // chain, but query with starts {0} vs {0, 4} must agree since both
  // starts see the same trajectories.
  auto store = ChainStore(2, {0, 1}, 10, HMS(9));
  auto index = BuildIndex(*store);
  auto single = ReachabilityProbability::Create(*index, {0}, HMS(9), 300, 600);
  auto multi =
      ReachabilityProbability::Create(*index, {0, 4}, HMS(9), 300, 600);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(multi.ok());
  for (SegmentId s = 0; s < 10; ++s) {
    EXPECT_DOUBLE_EQ(*single->Probability(s), *multi->Probability(s));
  }
}

// --- Engine edge cases -------------------------------------------------------

TEST(EngineEdgeTest, EmptyTrafficDatasetYieldsEmptyRegions) {
  RoadNetwork net = MakeGridNetwork(4, 4, 400.0);
  TrajectoryStore store(5);  // zero trajectories
  EngineOptions opt;
  opt.work_dir = MakeTempDir("empty_engine");
  auto engine = ReachabilityEngine::Build(net, store, opt);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  SQuery q{{200.0, 200.0}, HMS(12), 600, 0.2};
  auto region = (*engine)->SQueryIndexed(q);
  ASSERT_TRUE(region.ok());
  EXPECT_TRUE(region->segments.empty());
  EXPECT_DOUBLE_EQ(region->total_length_m, 0.0);
  auto es = (*engine)->SQueryExhaustive(q);
  ASSERT_TRUE(es.ok());
  EXPECT_TRUE(es->segments.empty());
}

TEST(EngineEdgeTest, SingleSegmentNetwork) {
  RoadNetwork net = MakeChainNetwork(1, 200.0);
  auto store = std::make_unique<TrajectoryStore>(2);
  MatchedTrajectory t;
  t.id = 0;
  t.day = 0;
  t.samples = {{0, MakeTimestamp(0, HMS(10)), 8.0f}};
  ASSERT_TRUE(store->Add(std::move(t)).ok());
  EngineOptions opt;
  opt.work_dir = MakeTempDir("single_engine");
  auto engine = ReachabilityEngine::Build(net, *store, opt);
  ASSERT_TRUE(engine.ok());
  // Prob=0.5 but the segment is only reached on 1 of 2 days.
  SQuery q{{100.0, 0.0}, HMS(10), 300, 0.5};
  auto region = (*engine)->SQueryIndexed(q);
  ASSERT_TRUE(region.ok());
  EXPECT_EQ(region->segments.size(), 1u);  // 1/2 days = 0.5 >= 0.5
  q.prob = 0.6;
  region = (*engine)->SQueryIndexed(q);
  ASSERT_TRUE(region.ok());
  EXPECT_TRUE(region->segments.empty());
}

TEST(EngineEdgeTest, QueryAtMidnightBoundary) {
  auto& stack = testing_util::GetSharedStack();
  SQuery q{stack.dataset.center, HMS(23, 55), 600, 0.1};
  auto region = stack.engine->SQueryIndexed(q);
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  // The window clamps at midnight (trajectories are per-day); must not
  // crash and region is bounded by whatever traffic exists before 24:00.
}

TEST(EngineEdgeTest, CorruptPostingFileSurfacesAsError) {
  RoadNetwork net = MakeGridNetwork(3, 3, 400.0);
  auto store = std::make_unique<TrajectoryStore>(2);
  MatchedTrajectory t;
  t.id = 0;
  t.day = 0;
  t.samples = {{0, MakeTimestamp(0, HMS(10)), 8.0f}};
  ASSERT_TRUE(store->Add(std::move(t)).ok());
  StIndexOptions opt;
  opt.slot_seconds = 300;
  std::string dir = MakeTempDir("corrupt_idx");
  opt.posting_path = dir + "/p.bin";
  {
    auto index = StIndex::Build(net, *store, opt);
    ASSERT_TRUE(index.ok());
  }
  // Truncate the posting file to break the directory, then rebuild the
  // reader path via StIndex::Build -> PostingStore::Open (Build rewrites
  // the file, so corrupt AFTER and open via PostingStore directly).
  auto size = std::filesystem::file_size(opt.posting_path);
  std::filesystem::resize_file(opt.posting_path, (size / 4096 / 2) * 4096);
  auto reopened = PostingStore::Open(opt.posting_path, 64);
  EXPECT_FALSE(reopened.ok());
}

// --- Bounding-region edge cases ----------------------------------------------

class BoundingEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = MakeGridNetwork(4, 4, 300.0);
    store_ = std::make_unique<TrajectoryStore>(1);
    MatchedTrajectory t;
    t.id = 0;
    t.day = 0;
    t.samples = {{0, MakeTimestamp(0, HMS(10)), 8.0f}};
    ASSERT_TRUE(store_->Add(std::move(t)).ok());
    auto profile = SpeedProfile::Build(net_, *store_);
    ASSERT_TRUE(profile.ok());
    profile_ = std::make_unique<SpeedProfile>(std::move(*profile));
  }

  RoadNetwork net_;
  std::unique_ptr<TrajectoryStore> store_;
  std::unique_ptr<SpeedProfile> profile_;
};

TEST_F(BoundingEdgeTest, SaturatedConeHasNonEmptySeed) {
  // Huge Δt: one hop covers the whole grid -> geometric boundary empty,
  // last-frontier fallback must still give TBS something to start from.
  ConIndexOptions opt;
  opt.delta_t_seconds = 3600;
  auto con = ConIndex::Create(net_, *profile_, opt);
  ASSERT_TRUE(con.ok());
  auto regions = SqmbSearch(net_, **con, 0, HMS(10), 3600);
  ASSERT_TRUE(regions.ok());
  EXPECT_EQ(regions->max_region.size(), net_.NumSegments());
  EXPECT_FALSE(regions->boundary.empty());
}

TEST_F(BoundingEdgeTest, TinyDeltaTGivesTinyCone) {
  ConIndexOptions opt;
  opt.delta_t_seconds = 10;  // 10 seconds: barely past the start segment
  auto con = ConIndex::Create(net_, *profile_, opt);
  ASSERT_TRUE(con.ok());
  auto regions = SqmbSearch(net_, **con, 0, HMS(10), 10);
  ASSERT_TRUE(regions.ok());
  EXPECT_LT(regions->max_region.size(), 4u);
}

TEST_F(BoundingEdgeTest, LocationSegmentSetContainsTwins) {
  // Grid streets are two-way: the set has both directions.
  auto set = LocationSegmentSet(net_, 0);
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(net_.segment(set[0]).reverse_id, set[1]);
  // One-way chain: singleton.
  RoadNetwork chain = MakeChainNetwork(2);
  EXPECT_EQ(LocationSegmentSet(chain, 0).size(), 1u);
}

}  // namespace
}  // namespace strr
