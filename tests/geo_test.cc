// Tests for geo primitives: points/projection, MBR, polyline, GeoJSON.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "geo/geojson.h"
#include "geo/mbr.h"
#include "geo/point.h"
#include "geo/polyline.h"

namespace strr {
namespace {

// --- Points / projection -----------------------------------------------------

TEST(GeoPointTest, HaversineKnownDistance) {
  // One degree of latitude is ~111.2 km anywhere.
  GeoPoint a{22.0, 114.0}, b{23.0, 114.0};
  EXPECT_NEAR(HaversineMeters(a, b), 111195.0, 300.0);
}

TEST(GeoPointTest, HaversineZero) {
  GeoPoint p{22.5, 114.05};
  EXPECT_DOUBLE_EQ(HaversineMeters(p, p), 0.0);
}

TEST(GeoPointTest, HaversineSymmetric) {
  GeoPoint a{22.5, 114.0}, b{22.6, 114.2};
  EXPECT_DOUBLE_EQ(HaversineMeters(a, b), HaversineMeters(b, a));
}

TEST(ProjectionTest, OriginMapsToZero) {
  Projection proj({22.53, 114.05});
  XyPoint xy = proj.ToXy({22.53, 114.05});
  EXPECT_NEAR(xy.x, 0.0, 1e-9);
  EXPECT_NEAR(xy.y, 0.0, 1e-9);
}

TEST(ProjectionTest, RoundTrip) {
  Projection proj({22.53, 114.05});
  GeoPoint g{22.61, 114.21};
  GeoPoint back = proj.ToGeo(proj.ToXy(g));
  EXPECT_NEAR(back.lat, g.lat, 1e-9);
  EXPECT_NEAR(back.lon, g.lon, 1e-9);
}

TEST(ProjectionTest, DistancesMatchHaversineLocally) {
  Projection proj({22.53, 114.05});
  GeoPoint a{22.55, 114.10}, b{22.58, 114.02};
  double planar = Distance(proj.ToXy(a), proj.ToXy(b));
  double sphere = HaversineMeters(a, b);
  EXPECT_NEAR(planar / sphere, 1.0, 0.002);  // <0.2% over ~10 km
}

TEST(XyPointTest, VectorOps) {
  XyPoint a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  XyPoint b = a * 2.0;
  EXPECT_DOUBLE_EQ(b.x, 6.0);
  XyPoint c = b - a;
  EXPECT_DOUBLE_EQ(c.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.Dot(XyPoint{1.0, 0.0}), 3.0);
}

// --- Mbr ---------------------------------------------------------------------

TEST(MbrTest, DefaultIsEmpty) {
  Mbr m;
  EXPECT_TRUE(m.IsEmpty());
  EXPECT_DOUBLE_EQ(m.Area(), 0.0);
}

TEST(MbrTest, ExtendPoint) {
  Mbr m;
  m.Extend(XyPoint{1.0, 2.0});
  EXPECT_FALSE(m.IsEmpty());
  EXPECT_DOUBLE_EQ(m.Area(), 0.0);  // degenerate point box
  m.Extend(XyPoint{3.0, 5.0});
  EXPECT_DOUBLE_EQ(m.Width(), 2.0);
  EXPECT_DOUBLE_EQ(m.Height(), 3.0);
  EXPECT_DOUBLE_EQ(m.Area(), 6.0);
}

TEST(MbrTest, ExtendEmptyIsIdentity) {
  Mbr m(0, 0, 2, 2);
  Mbr empty;
  m.Extend(empty);
  EXPECT_DOUBLE_EQ(m.Area(), 4.0);
}

TEST(MbrTest, IntersectsOverlap) {
  Mbr a(0, 0, 2, 2), b(1, 1, 3, 3), c(5, 5, 6, 6);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
}

TEST(MbrTest, IntersectsTouchingEdge) {
  Mbr a(0, 0, 1, 1), b(1, 0, 2, 1);
  EXPECT_TRUE(a.Intersects(b));  // closed rectangles share the edge
}

TEST(MbrTest, EmptyNeverIntersects) {
  Mbr a(0, 0, 10, 10), empty;
  EXPECT_FALSE(a.Intersects(empty));
  EXPECT_FALSE(empty.Intersects(a));
}

TEST(MbrTest, ContainsPointAndBox) {
  Mbr a(0, 0, 4, 4);
  EXPECT_TRUE(a.Contains(XyPoint{2, 2}));
  EXPECT_TRUE(a.Contains(XyPoint{0, 0}));  // boundary inclusive
  EXPECT_FALSE(a.Contains(XyPoint{5, 2}));
  EXPECT_TRUE(a.Contains(Mbr(1, 1, 2, 2)));
  EXPECT_FALSE(a.Contains(Mbr(3, 3, 5, 5)));
}

TEST(MbrTest, EnlargementToCover) {
  Mbr a(0, 0, 2, 2);
  EXPECT_DOUBLE_EQ(a.EnlargementToCover(Mbr(1, 1, 2, 2)), 0.0);
  EXPECT_DOUBLE_EQ(a.EnlargementToCover(Mbr(0, 0, 4, 2)), 4.0);
}

TEST(MbrTest, MinDistance) {
  Mbr a(0, 0, 2, 2);
  EXPECT_DOUBLE_EQ(a.MinDistance(XyPoint{1, 1}), 0.0);   // inside
  EXPECT_DOUBLE_EQ(a.MinDistance(XyPoint{4, 1}), 2.0);   // right side
  EXPECT_DOUBLE_EQ(a.MinDistance(XyPoint{5, 6}), 5.0);   // corner 3-4-5
}

TEST(MbrTest, ExpandedGrowsAllSides) {
  Mbr a(1, 1, 2, 2);
  Mbr e = a.Expanded(0.5);
  EXPECT_DOUBLE_EQ(e.min_x(), 0.5);
  EXPECT_DOUBLE_EQ(e.max_y(), 2.5);
  EXPECT_DOUBLE_EQ(e.Area(), 4.0);
}

TEST(MbrTest, CenterAndPerimeter) {
  Mbr a(0, 0, 4, 2);
  EXPECT_DOUBLE_EQ(a.Center().x, 2.0);
  EXPECT_DOUBLE_EQ(a.Center().y, 1.0);
  EXPECT_DOUBLE_EQ(a.Perimeter(), 12.0);
}

// --- Polyline ----------------------------------------------------------------

TEST(PolylineTest, LengthOfStraightLine) {
  Polyline line({{0, 0}, {3, 4}});
  EXPECT_DOUBLE_EQ(line.Length(), 5.0);
}

TEST(PolylineTest, LengthOfMultiVertex) {
  Polyline line({{0, 0}, {1, 0}, {1, 1}});
  EXPECT_DOUBLE_EQ(line.Length(), 2.0);
}

TEST(PolylineTest, EmptyAndSinglePoint) {
  Polyline empty;
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_DOUBLE_EQ(empty.Length(), 0.0);
  Polyline single({{1, 1}});
  EXPECT_TRUE(single.IsEmpty());
  EXPECT_DOUBLE_EQ(single.Length(), 0.0);
}

TEST(PolylineTest, InterpolateEndpointsAndMidpoint) {
  Polyline line({{0, 0}, {10, 0}});
  EXPECT_DOUBLE_EQ(line.Interpolate(0.0).x, 0.0);
  EXPECT_DOUBLE_EQ(line.Interpolate(10.0).x, 10.0);
  EXPECT_DOUBLE_EQ(line.Interpolate(5.0).x, 5.0);
  // Clamping.
  EXPECT_DOUBLE_EQ(line.Interpolate(-3.0).x, 0.0);
  EXPECT_DOUBLE_EQ(line.Interpolate(99.0).x, 10.0);
}

TEST(PolylineTest, InterpolateAcrossVertices) {
  Polyline line({{0, 0}, {1, 0}, {1, 2}});
  XyPoint p = line.Interpolate(2.0);  // 1m along second leg
  EXPECT_DOUBLE_EQ(p.x, 1.0);
  EXPECT_DOUBLE_EQ(p.y, 1.0);
}

TEST(PolylineTest, ProjectOntoSegmentInterior) {
  Polyline line({{0, 0}, {10, 0}});
  auto proj = line.Project({4.0, 3.0});
  EXPECT_DOUBLE_EQ(proj.distance, 3.0);
  EXPECT_DOUBLE_EQ(proj.offset, 4.0);
  EXPECT_DOUBLE_EQ(proj.closest.x, 4.0);
}

TEST(PolylineTest, ProjectClampsToEndpoints) {
  Polyline line({{0, 0}, {10, 0}});
  auto proj = line.Project({-5.0, 0.0});
  EXPECT_DOUBLE_EQ(proj.offset, 0.0);
  EXPECT_DOUBLE_EQ(proj.distance, 5.0);
  proj = line.Project({15.0, 0.0});
  EXPECT_DOUBLE_EQ(proj.offset, 10.0);
}

TEST(PolylineTest, ProjectPicksNearestLeg) {
  Polyline line({{0, 0}, {10, 0}, {10, 10}});
  auto proj = line.Project({9.0, 8.0});
  EXPECT_EQ(proj.segment_index, 1u);
  EXPECT_DOUBLE_EQ(proj.closest.x, 10.0);
  EXPECT_DOUBLE_EQ(proj.closest.y, 8.0);
  EXPECT_DOUBLE_EQ(proj.offset, 18.0);
}

TEST(PolylineTest, SplitAtMidpoint) {
  Polyline line({{0, 0}, {10, 0}});
  auto pieces = line.SplitAt({5.0});
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_DOUBLE_EQ(pieces[0].Length(), 5.0);
  EXPECT_DOUBLE_EQ(pieces[1].Length(), 5.0);
  EXPECT_DOUBLE_EQ(pieces[0].points().back().x, 5.0);
  EXPECT_DOUBLE_EQ(pieces[1].points().front().x, 5.0);
}

TEST(PolylineTest, SplitPreservesTotalLength) {
  Polyline line({{0, 0}, {4, 3}, {8, 3}, {8, 10}});
  auto pieces = line.SplitAt({2.0, 7.5, 11.0});
  double total = 0;
  for (const auto& p : pieces) total += p.Length();
  EXPECT_NEAR(total, line.Length(), 1e-9);
  EXPECT_EQ(pieces.size(), 4u);
}

TEST(PolylineTest, SplitIgnoresOutOfRangeOffsets) {
  Polyline line({{0, 0}, {10, 0}});
  auto pieces = line.SplitAt({-1.0, 0.0, 10.0, 42.0});
  EXPECT_EQ(pieces.size(), 1u);
  EXPECT_DOUBLE_EQ(pieces[0].Length(), 10.0);
}

TEST(PolylineTest, BoundingBoxCoversAllVertices) {
  Polyline line({{0, 0}, {5, -2}, {3, 7}});
  const Mbr& box = line.BoundingBox();
  EXPECT_DOUBLE_EQ(box.min_y(), -2.0);
  EXPECT_DOUBLE_EQ(box.max_y(), 7.0);
  EXPECT_DOUBLE_EQ(box.max_x(), 5.0);
}

TEST(PointSegmentDistanceTest, PerpendicularAndClamped) {
  XyPoint a{0, 0}, b{10, 0};
  XyPoint closest;
  double t;
  EXPECT_DOUBLE_EQ(PointSegmentDistance({5, 2}, a, b, &closest, &t), 2.0);
  EXPECT_DOUBLE_EQ(t, 0.5);
  EXPECT_DOUBLE_EQ(PointSegmentDistance({-3, 4}, a, b, &closest, &t), 5.0);
  EXPECT_DOUBLE_EQ(t, 0.0);
}

TEST(PointSegmentDistanceTest, DegenerateSegment) {
  XyPoint a{1, 1};
  EXPECT_DOUBLE_EQ(PointSegmentDistance({4, 5}, a, a, nullptr, nullptr), 5.0);
}

// --- GeoJSON -----------------------------------------------------------------

TEST(GeoJsonTest, EmptyCollection) {
  GeoJsonWriter w;
  EXPECT_EQ(w.ToString(), "{\"type\":\"FeatureCollection\",\"features\":[]}");
}

TEST(GeoJsonTest, PointFeature) {
  GeoJsonWriter w;
  w.AddPoint({22.5, 114.1}, {{"name", GeoJsonWriter::Quoted("start")}});
  std::string json = w.ToString();
  EXPECT_NE(json.find("\"type\":\"Point\""), std::string::npos);
  EXPECT_NE(json.find("[114.100000,22.500000]"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"start\""), std::string::npos);
}

TEST(GeoJsonTest, LineStringCoordinateOrderIsLonLat) {
  GeoJsonWriter w;
  w.AddLineString({{1.0, 2.0}, {3.0, 4.0}});
  std::string json = w.ToString();
  // lat=1, lon=2 must serialize as [2, 1].
  EXPECT_NE(json.find("[2.000000,1.000000]"), std::string::npos);
  EXPECT_NE(json.find("[4.000000,3.000000]"), std::string::npos);
}

TEST(GeoJsonTest, QuotedEscapesSpecials) {
  EXPECT_EQ(GeoJsonWriter::Quoted("a\"b\\c"), "\"a\\\"b\\\\c\"");
}

TEST(GeoJsonTest, WriteFileRoundTrip) {
  GeoJsonWriter w;
  w.AddPoint({22.5, 114.1});
  std::string path = ::testing::TempDir() + "strr_geojson_test.json";
  ASSERT_TRUE(w.WriteFile(path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, w.ToString());
  std::filesystem::remove(path);
}

TEST(GeoJsonTest, WriteFileBadPathFails) {
  GeoJsonWriter w;
  EXPECT_TRUE(w.WriteFile("/nonexistent_dir_xyz/f.json").IsIoError());
}

TEST(GeoJsonTest, NumFeaturesCounts) {
  GeoJsonWriter w;
  EXPECT_EQ(w.NumFeatures(), 0u);
  w.AddPoint({0, 0});
  w.AddLineString({{0, 0}, {1, 1}});
  EXPECT_EQ(w.NumFeatures(), 2u);
}

}  // namespace
}  // namespace strr
