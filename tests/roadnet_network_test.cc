// Tests for RoadNetwork topology, re-segmentation and the city generator.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "roadnet/city_generator.h"
#include "roadnet/resegmenter.h"
#include "roadnet/road_network.h"
#include "tests/test_util.h"

namespace strr {
namespace {

using testing_util::MakeChainNetwork;
using testing_util::MakeGridNetwork;

// --- RoadNetwork -------------------------------------------------------------

TEST(RoadNetworkTest, AddNodeAssignsSequentialIds) {
  RoadNetwork net;
  EXPECT_EQ(net.AddNode({0, 0}), 0u);
  EXPECT_EQ(net.AddNode({1, 1}), 1u);
  EXPECT_EQ(net.NumNodes(), 2u);
}

TEST(RoadNetworkTest, AddSegmentValidation) {
  RoadNetwork net;
  NodeId a = net.AddNode({0, 0});
  NodeId b = net.AddNode({100, 0});
  EXPECT_TRUE(net.AddSegment(a, 99, RoadLevel::kLocal,
                             Polyline({{0, 0}, {1, 1}}))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(net.AddSegment(a, b, RoadLevel::kLocal, Polyline({{0, 0}}))
                  .status()
                  .IsInvalidArgument());
  auto ok = net.AddSegment(a, b, RoadLevel::kLocal,
                           Polyline({net.node(a), net.node(b)}));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(net.segment(*ok).length, 100.0);
}

TEST(RoadNetworkTest, TwoWayCreatesTwins) {
  RoadNetwork net;
  NodeId a = net.AddNode({0, 0});
  NodeId b = net.AddNode({50, 0});
  auto fwd = net.AddTwoWaySegment(a, b, RoadLevel::kArterial,
                                  Polyline({net.node(a), net.node(b)}));
  ASSERT_TRUE(fwd.ok());
  const RoadSegment& f = net.segment(*fwd);
  ASSERT_TRUE(f.two_way);
  const RoadSegment& r = net.segment(f.reverse_id);
  EXPECT_EQ(r.reverse_id, f.id);
  EXPECT_EQ(r.from_node, b);
  EXPECT_EQ(r.to_node, a);
  EXPECT_EQ(r.length, f.length);
  // Reverse shape runs backwards.
  EXPECT_EQ(r.shape.points().front().x, 50.0);
  EXPECT_EQ(r.shape.points().back().x, 0.0);
}

TEST(RoadNetworkTest, OutgoingExcludesUTurn) {
  // a <-> b <-> c : from segment a->b, outgoing should be b->c only,
  // not b->a (the U-turn onto its own twin).
  RoadNetwork net;
  NodeId a = net.AddNode({0, 0});
  NodeId b = net.AddNode({10, 0});
  NodeId c = net.AddNode({20, 0});
  SegmentId ab = *net.AddTwoWaySegment(a, b, RoadLevel::kLocal,
                                       Polyline({net.node(a), net.node(b)}));
  SegmentId bc = *net.AddTwoWaySegment(b, c, RoadLevel::kLocal,
                                       Polyline({net.node(b), net.node(c)}));
  ASSERT_TRUE(net.Finalize().ok());
  const auto& out = net.OutgoingOf(ab);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], bc);
}

TEST(RoadNetworkTest, NeighborsIncludeTwinAndEndpointSharers) {
  RoadNetwork net = MakeGridNetwork(2, 2, 100.0);
  // Every segment should list its reverse twin among neighbours.
  for (const RoadSegment& seg : net.segments()) {
    const auto& nbs = net.NeighborsOf(seg.id);
    EXPECT_NE(std::find(nbs.begin(), nbs.end(), seg.reverse_id), nbs.end())
        << "segment " << seg.id << " missing twin";
    // Never contains itself.
    EXPECT_EQ(std::find(nbs.begin(), nbs.end(), seg.id), nbs.end());
  }
}

TEST(RoadNetworkTest, NeighborsAreSymmetric) {
  RoadNetwork net = MakeGridNetwork(3, 3, 100.0);
  for (const RoadSegment& seg : net.segments()) {
    for (SegmentId nb : net.NeighborsOf(seg.id)) {
      const auto& back = net.NeighborsOf(nb);
      EXPECT_NE(std::find(back.begin(), back.end(), seg.id), back.end())
          << seg.id << " -> " << nb << " not symmetric";
    }
  }
}

TEST(RoadNetworkTest, IncomingMirrorsOutgoing) {
  RoadNetwork net = MakeGridNetwork(3, 4, 150.0);
  for (const RoadSegment& seg : net.segments()) {
    for (SegmentId next : net.OutgoingOf(seg.id)) {
      const auto& inc = net.IncomingOf(next);
      EXPECT_NE(std::find(inc.begin(), inc.end(), seg.id), inc.end());
    }
  }
}

TEST(RoadNetworkTest, TotalLengthCountsTwoWayOnce) {
  RoadNetwork net;
  NodeId a = net.AddNode({0, 0});
  NodeId b = net.AddNode({100, 0});
  NodeId c = net.AddNode({100, 50});
  ASSERT_TRUE(net.AddTwoWaySegment(a, b, RoadLevel::kLocal,
                                   Polyline({net.node(a), net.node(b)}))
                  .ok());
  ASSERT_TRUE(net.AddSegment(b, c, RoadLevel::kLocal,
                             Polyline({net.node(b), net.node(c)}))
                  .ok());
  ASSERT_TRUE(net.Finalize().ok());
  EXPECT_DOUBLE_EQ(net.TotalLengthMeters(), 150.0);
}

TEST(RoadNetworkTest, LengthOfSegmentsSumsAndIgnoresInvalid) {
  RoadNetwork net = MakeChainNetwork(3, 100.0);
  EXPECT_DOUBLE_EQ(net.LengthOfSegments({0, 1, 2}), 300.0);
  EXPECT_DOUBLE_EQ(net.LengthOfSegments({0, 99999}), 100.0);
  EXPECT_DOUBLE_EQ(net.LengthOfSegments({}), 0.0);
}

TEST(RoadNetworkTest, BoundingBoxCoversNetwork) {
  RoadNetwork net = MakeGridNetwork(3, 5, 200.0);
  Mbr box = net.BoundingBox();
  EXPECT_DOUBLE_EQ(box.min_x(), 0.0);
  EXPECT_DOUBLE_EQ(box.max_x(), 800.0);
  EXPECT_DOUBLE_EQ(box.max_y(), 400.0);
}

TEST(RoadNetworkTest, NearestSegmentBruteForce) {
  RoadNetwork net = MakeChainNetwork(4, 100.0);
  auto hit = net.NearestSegmentBruteForce({250.0, 10.0});
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, 2u);  // third segment spans [200, 300]
  RoadNetwork empty;
  ASSERT_TRUE(empty.Finalize().ok());
  EXPECT_TRUE(empty.NearestSegmentBruteForce({0, 0}).status().IsNotFound());
}

TEST(RoadNetworkTest, CountByLevel) {
  RoadNetwork net;
  NodeId a = net.AddNode({0, 0});
  NodeId b = net.AddNode({10, 0});
  ASSERT_TRUE(net.AddSegment(a, b, RoadLevel::kHighway,
                             Polyline({net.node(a), net.node(b)}))
                  .ok());
  ASSERT_TRUE(net.AddSegment(b, a, RoadLevel::kLocal,
                             Polyline({net.node(b), net.node(a)}))
                  .ok());
  ASSERT_TRUE(net.Finalize().ok());
  auto counts = net.CountByLevel();
  EXPECT_EQ(counts[0], 1u);  // highway
  EXPECT_EQ(counts[1], 0u);  // arterial
  EXPECT_EQ(counts[2], 1u);  // local
}

TEST(RoadSegmentTest, TravelTime) {
  RoadSegment seg;
  seg.length = 100.0;
  EXPECT_DOUBLE_EQ(seg.TravelTimeSeconds(10.0), 10.0);
  EXPECT_DOUBLE_EQ(seg.TravelTimeSeconds(0.0), 0.0);
}

TEST(RoadSegmentTest, FreeFlowSpeedsOrdered) {
  EXPECT_GT(FreeFlowSpeed(RoadLevel::kHighway),
            FreeFlowSpeed(RoadLevel::kArterial));
  EXPECT_GT(FreeFlowSpeed(RoadLevel::kArterial),
            FreeFlowSpeed(RoadLevel::kLocal));
}

// --- Resegmenter -------------------------------------------------------------

TEST(ResegmenterTest, ShortSegmentsUntouched) {
  RoadNetwork net = MakeChainNetwork(3, 300.0);
  auto result = Resegment(net, {.granularity_meters = 500.0});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->network.NumSegments(), 3u);
}

TEST(ResegmenterTest, LongSegmentsChopped) {
  RoadNetwork net = MakeChainNetwork(1, 1200.0);
  auto result = Resegment(net, {.granularity_meters = 500.0});
  ASSERT_TRUE(result.ok());
  // 1200m -> 3 pieces of 400m.
  EXPECT_EQ(result->network.NumSegments(), 3u);
  for (const RoadSegment& s : result->network.segments()) {
    EXPECT_NEAR(s.length, 400.0, 1e-9);
  }
}

TEST(ResegmenterTest, EveryOutputWithinGranularity) {
  CityOptions copt;
  copt.grid_cols = 6;
  copt.grid_rows = 5;
  copt.block_meters = 1100.0;
  auto city = GenerateCity(copt);
  ASSERT_TRUE(city.ok());
  auto result = Resegment(city->network, {.granularity_meters = 500.0});
  ASSERT_TRUE(result.ok());
  for (const RoadSegment& s : result->network.segments()) {
    EXPECT_LE(s.length, 500.0 + 1e-6);
  }
}

TEST(ResegmenterTest, TotalLengthPreserved) {
  RoadNetwork net = MakeGridNetwork(4, 4, 1300.0);
  auto result = Resegment(net, {.granularity_meters = 500.0});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->network.TotalLengthMeters(), net.TotalLengthMeters(),
              1e-6);
}

TEST(ResegmenterTest, ParentMappingCoversAllNewSegments) {
  RoadNetwork net = MakeGridNetwork(3, 3, 1300.0);
  auto result = Resegment(net, {.granularity_meters = 500.0});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->parent_of.size(), result->network.NumSegments());
  for (size_t i = 0; i < result->parent_of.size(); ++i) {
    SegmentId parent = result->parent_of[i];
    ASSERT_LT(parent, net.NumSegments());
    // Same road level preserved.
    EXPECT_EQ(result->network.segment(i).level, net.segment(parent).level);
  }
}

TEST(ResegmenterTest, TwinsStayPaired) {
  RoadNetwork net = MakeGridNetwork(2, 3, 1600.0);
  auto result = Resegment(net, {.granularity_meters = 500.0});
  ASSERT_TRUE(result.ok());
  for (const RoadSegment& s : result->network.segments()) {
    ASSERT_TRUE(s.two_way);
    const RoadSegment& twin = result->network.segment(s.reverse_id);
    EXPECT_EQ(twin.reverse_id, s.id);
    EXPECT_EQ(twin.from_node, s.to_node);
    EXPECT_EQ(twin.to_node, s.from_node);
  }
}

TEST(ResegmenterTest, RejectsBadInput) {
  RoadNetwork unfinalized;
  unfinalized.AddNode({0, 0});
  EXPECT_TRUE(Resegment(unfinalized, {.granularity_meters = 500.0})
                  .status()
                  .IsFailedPrecondition());
  RoadNetwork net = MakeChainNetwork(1);
  EXPECT_TRUE(Resegment(net, {.granularity_meters = -5.0})
                  .status()
                  .IsInvalidArgument());
}

TEST(ResegmenterTest, ConnectivityPreserved) {
  // A path that existed before re-segmentation must still exist.
  RoadNetwork net = MakeChainNetwork(2, 1500.0);
  auto result = Resegment(net, {.granularity_meters = 500.0});
  ASSERT_TRUE(result.ok());
  const RoadNetwork& out = result->network;
  // Walk forward from segment 0 through outgoing links; must reach the
  // last node eventually.
  std::set<SegmentId> seen{0};
  std::vector<SegmentId> frontier{0};
  while (!frontier.empty()) {
    SegmentId cur = frontier.back();
    frontier.pop_back();
    for (SegmentId next : out.OutgoingOf(cur)) {
      if (seen.insert(next).second) frontier.push_back(next);
    }
  }
  EXPECT_EQ(seen.size(), out.NumSegments());  // chain fully traversable
}

// --- CityGenerator -----------------------------------------------------------

TEST(CityGeneratorTest, DeterministicForSameSeed) {
  CityOptions opt;
  opt.grid_cols = 6;
  opt.grid_rows = 5;
  opt.seed = 33;
  auto a = GenerateCity(opt);
  auto b = GenerateCity(opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->network.NumSegments(), b->network.NumSegments());
  for (size_t i = 0; i < a->network.NumSegments(); ++i) {
    EXPECT_EQ(a->network.segment(i).from_node, b->network.segment(i).from_node);
    EXPECT_DOUBLE_EQ(a->network.segment(i).length,
                     b->network.segment(i).length);
  }
}

TEST(CityGeneratorTest, HasAllRoadLevels) {
  auto city = GenerateCity(CityOptions{});
  ASSERT_TRUE(city.ok());
  auto counts = city->network.CountByLevel();
  EXPECT_GT(counts[0], 0u) << "no highways";
  EXPECT_GT(counts[1], 0u) << "no arterials";
  EXPECT_GT(counts[2], 0u) << "no local roads";
}

TEST(CityGeneratorTest, MostSegmentsMutuallyReachable) {
  CityOptions opt;
  opt.grid_cols = 8;
  opt.grid_rows = 6;
  auto city = GenerateCity(opt);
  ASSERT_TRUE(city.ok());
  const RoadNetwork& net = city->network;
  // BFS over outgoing links from segment 0 should reach nearly everything
  // (one-way streets can strand a few, but the city must be substantially
  // strongly connected for the simulator to work).
  std::vector<uint8_t> seen(net.NumSegments(), 0);
  std::vector<SegmentId> frontier{0};
  seen[0] = 1;
  size_t count = 1;
  while (!frontier.empty()) {
    SegmentId cur = frontier.back();
    frontier.pop_back();
    for (SegmentId next : net.OutgoingOf(cur)) {
      if (!seen[next]) {
        seen[next] = 1;
        ++count;
        frontier.push_back(next);
      }
    }
  }
  EXPECT_GT(count, net.NumSegments() * 95 / 100);
}

TEST(CityGeneratorTest, RejectsDegenerateGrid) {
  CityOptions opt;
  opt.grid_cols = 1;
  EXPECT_TRUE(GenerateCity(opt).status().IsInvalidArgument());
  opt.grid_cols = 5;
  opt.block_meters = 0.0;
  EXPECT_TRUE(GenerateCity(opt).status().IsInvalidArgument());
}

TEST(CityGeneratorTest, CenterInsideBoundingBox) {
  auto city = GenerateCity(CityOptions{});
  ASSERT_TRUE(city.ok());
  EXPECT_TRUE(city->network.BoundingBox().Contains(city->center));
}

}  // namespace
}  // namespace strr
