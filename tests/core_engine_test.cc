// Integration tests: the full pipeline (dataset -> engine -> queries) and
// the ReachabilityEngine facade behaviour the paper's evaluation relies on.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/dataset.h"
#include "core/reachability_engine.h"
#include "tests/test_util.h"

namespace strr {
namespace {

using testing_util::GetSharedStack;
using testing_util::MakeTempDir;

TEST(DatasetTest, BuildsDeterministically) {
  DatasetOptions opt = TestDatasetOptions();
  auto a = BuildDataset(opt);
  auto b = BuildDataset(opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->network.NumSegments(), b->network.NumSegments());
  EXPECT_EQ(a->store->NumTrajectories(), b->store->NumTrajectories());
  EXPECT_EQ(a->num_trips, b->num_trips);
}

TEST(DatasetTest, ResegmentationApplied) {
  auto dataset = BuildDataset(TestDatasetOptions());
  ASSERT_TRUE(dataset.ok());
  for (const RoadSegment& seg : dataset->network.segments()) {
    EXPECT_LE(seg.length, TestDatasetOptions().reseg.granularity_meters + 1e-6);
  }
}

TEST(DatasetTest, CenterIsInsideNetwork) {
  auto dataset = BuildDataset(TestDatasetOptions());
  ASSERT_TRUE(dataset.ok());
  EXPECT_TRUE(dataset->network.BoundingBox().Contains(dataset->center));
}

TEST(EngineTest, BuildRequiresWorkDir) {
  auto& stack = GetSharedStack();
  EngineOptions opt;  // no work_dir
  EXPECT_TRUE(ReachabilityEngine::Build(stack.dataset.network,
                                        *stack.dataset.store, opt)
                  .status()
                  .IsInvalidArgument());
}

TEST(EngineTest, SQueryProducesNonEmptyRegionAtBusyTime) {
  auto& stack = GetSharedStack();
  SQuery q{stack.dataset.center, HMS(11), 600, 0.1};
  auto result = stack.engine->SQueryIndexed(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->segments.empty());
  EXPECT_GT(result->total_length_m, 0.0);
  EXPECT_GT(result->stats.max_region_segments, 0u);
  EXPECT_GE(result->stats.max_region_segments,
            result->stats.min_region_segments);
  EXPECT_GT(result->stats.wall_ms, 0.0);
}

TEST(EngineTest, RegionIsSortedUnique) {
  auto& stack = GetSharedStack();
  SQuery q{stack.dataset.center, HMS(11), 600, 0.2};
  auto result = stack.engine->SQueryIndexed(q);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::is_sorted(result->segments.begin(), result->segments.end()));
  EXPECT_EQ(std::adjacent_find(result->segments.begin(),
                               result->segments.end()),
            result->segments.end());
}

TEST(EngineTest, TotalLengthMatchesSegments) {
  auto& stack = GetSharedStack();
  SQuery q{stack.dataset.center, HMS(11), 600, 0.2};
  auto result = stack.engine->SQueryIndexed(q);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_length_m,
              stack.engine->network().LengthOfSegments(result->segments),
              1e-6);
}

TEST(EngineTest, LongerDurationCoversMore) {
  auto& stack = GetSharedStack();
  SQuery q5{stack.dataset.center, HMS(11), 300, 0.1};
  SQuery q20{stack.dataset.center, HMS(11), 1200, 0.1};
  auto r5 = stack.engine->SQueryIndexed(q5);
  auto r20 = stack.engine->SQueryIndexed(q20);
  ASSERT_TRUE(r5.ok());
  ASSERT_TRUE(r20.ok());
  EXPECT_GE(r20->total_length_m, r5->total_length_m);
}

TEST(EngineTest, ExhaustiveDoesMoreIo) {
  auto& stack = GetSharedStack();
  SQuery q{stack.dataset.center, HMS(11), 900, 0.2};
  stack.engine->ResetIoStats(/*drop_cache=*/true);
  auto indexed = stack.engine->SQueryIndexed(q);
  ASSERT_TRUE(indexed.ok());
  stack.engine->ResetIoStats(/*drop_cache=*/true);
  auto exhaustive = stack.engine->SQueryExhaustive(q);
  ASSERT_TRUE(exhaustive.ok());
  EXPECT_LT(indexed->stats.time_lists_read, exhaustive->stats.time_lists_read);
}

TEST(EngineTest, QueryValidation) {
  auto& stack = GetSharedStack();
  SQuery q{stack.dataset.center, HMS(11), 600, 0.0};
  EXPECT_TRUE(stack.engine->SQueryIndexed(q).status().IsInvalidArgument());
  q.prob = 1.5;
  EXPECT_TRUE(stack.engine->SQueryIndexed(q).status().IsInvalidArgument());
  MQuery m;
  m.prob = 0.5;
  EXPECT_TRUE(stack.engine->MQueryIndexed(m).status().IsInvalidArgument());
}

TEST(EngineTest, MQueryMatchesRepeatedSQueryApproximately) {
  auto& stack = GetSharedStack();
  Mbr box = stack.engine->network().BoundingBox();
  MQuery m;
  m.locations = {stack.dataset.center,
                 {box.min_x() + box.Width() * 0.3,
                  box.min_y() + box.Height() * 0.3},
                 {box.min_x() + box.Width() * 0.7,
                  box.min_y() + box.Height() * 0.6}};
  m.start_tod = HMS(10);
  m.duration = 600;
  m.prob = 0.1;
  auto mq = stack.engine->MQueryIndexed(m);
  auto rep = stack.engine->MQueryRepeatedSQuery(m);
  ASSERT_TRUE(mq.ok());
  ASSERT_TRUE(rep.ok());
  ASSERT_FALSE(rep->segments.empty());
  // The two strategies agree on the bulk of the region (the elimination
  // rule can trim a few overlap-edge segments).
  std::vector<SegmentId> common;
  std::set_intersection(mq->segments.begin(), mq->segments.end(),
                        rep->segments.begin(), rep->segments.end(),
                        std::back_inserter(common));
  // The strategies differ legitimately: MQMB scores reachability against
  // the union of start trajectories and trims overlap cones with the
  // nearest-start rule, so exact equality is not expected — but the bulk
  // of the region must agree.
  double jaccard =
      static_cast<double>(common.size()) /
      (mq->segments.size() + rep->segments.size() - common.size());
  EXPECT_GT(jaccard, 0.55) << "m-query diverges from repeated s-query";
  // Segments reachable per-start are (almost all) reachable from the union.
  double containment =
      static_cast<double>(common.size()) / rep->segments.size();
  EXPECT_GT(containment, 0.6);
}

TEST(EngineTest, MQueryVerifiesLessThanRepeatedSQuery) {
  auto& stack = GetSharedStack();
  const StIndex& index = stack.engine->st_index();
  const RoadNetwork& net = stack.engine->network();
  // Pick three nearby segments that provably have 11:00 traffic, so both
  // strategies actually verify; heavy overlap -> MQMB saves verification.
  SlotId slot = index.SlotForTime(HMS(11));
  std::vector<XyPoint> locations;
  for (SegmentId s = 0; s < net.NumSegments() && locations.size() < 3; ++s) {
    if (!index.HasTraffic(s, slot)) continue;
    XyPoint mid = net.segment(s).shape.Interpolate(net.segment(s).length / 2);
    if (Distance(mid, stack.dataset.center) < 1200.0) {
      locations.push_back(mid);
    }
  }
  ASSERT_EQ(locations.size(), 3u) << "no busy segments near centre";
  MQuery m;
  m.locations = locations;
  m.start_tod = HMS(11);
  m.duration = 900;
  m.prob = 0.1;
  auto mq = stack.engine->MQueryIndexed(m);
  auto rep = stack.engine->MQueryRepeatedSQuery(m);
  ASSERT_TRUE(mq.ok());
  ASSERT_TRUE(rep.ok());
  ASSERT_GT(rep->stats.segments_verified, 0u);
  EXPECT_LT(mq->stats.segments_verified, rep->stats.segments_verified);
}

TEST(EngineTest, StatsIoDeltaIsScoped) {
  auto& stack = GetSharedStack();
  SQuery q{stack.dataset.center, HMS(11), 600, 0.2};
  auto r1 = stack.engine->SQueryIndexed(q);
  ASSERT_TRUE(r1.ok());
  auto r2 = stack.engine->SQueryIndexed(q);
  ASSERT_TRUE(r2.ok());
  // Second run hits the warm cache: no more disk reads than the first.
  EXPECT_LE(r2->stats.io.disk_page_reads, r1->stats.io.disk_page_reads);
}

TEST(EngineTest, QuietNightQueryYieldsSmallOrEmptyRegion) {
  auto& stack = GetSharedStack();
  SQuery night{stack.dataset.center, HMS(3), 600, 0.5};
  SQuery day{stack.dataset.center, HMS(11), 600, 0.5};
  auto rn = stack.engine->SQueryIndexed(night);
  auto rd = stack.engine->SQueryIndexed(day);
  ASSERT_TRUE(rn.ok());
  ASSERT_TRUE(rd.ok());
  // The test fleet's day shift starts at 06:00; almost nothing moves at 3am,
  // so the high-prob region should be much smaller than at 11:00.
  EXPECT_LT(rn->total_length_m, rd->total_length_m);
}

TEST(EngineTest, FullPipelineFreshBuild) {
  // End-to-end from options to query on a fresh tiny stack (independent of
  // the shared fixture).
  DatasetOptions opt = TestDatasetOptions();
  opt.city.grid_cols = 6;
  opt.city.grid_rows = 5;
  opt.fleet.num_taxis = 15;
  opt.fleet.num_days = 4;
  auto dataset = BuildDataset(opt);
  ASSERT_TRUE(dataset.ok());
  EngineOptions eopt;
  eopt.work_dir = MakeTempDir("fresh_engine");
  eopt.delta_t_seconds = 600;
  auto engine =
      ReachabilityEngine::Build(dataset->network, *dataset->store, eopt);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  SQuery q{dataset->center, HMS(12), 1200, 0.25};
  auto result = (*engine)->SQueryIndexed(q);
  ASSERT_TRUE(result.ok());
  auto es = (*engine)->SQueryExhaustive(q);
  ASSERT_TRUE(es.ok());
  EXPECT_TRUE(std::includes(result->segments.begin(), result->segments.end(),
                            es->segments.begin(), es->segments.end()));
}

}  // namespace
}  // namespace strr
