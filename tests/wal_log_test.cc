// WAL record format tests: round trips across block boundaries, the
// torn-tail truncation contract (every truncation point recovers a clean
// record prefix), and the corruption taxonomy (inconsistent bytes that are
// fully present must be typed Corruption, never a crash or a bad record).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/fs_util.h"
#include "storage/wal/log_reader.h"
#include "storage/wal/log_writer.h"
#include "tests/test_util.h"
#include "util/crc32c.h"

namespace strr {
namespace {

using testing_util::MakeTempDir;

std::string WriteLog(const std::vector<std::string>& payloads,
                     const std::string& tag) {
  std::string path = MakeTempDir(tag) + "/wal.log";
  auto file = AppendOnlyFile::Create(path);
  EXPECT_TRUE(file.ok()) << file.status().ToString();
  wal::LogWriter writer(file->get());
  for (const std::string& payload : payloads) {
    auto s = writer.AddRecord(payload);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  EXPECT_TRUE((*file)->Close().ok());
  auto bytes = ReadFileToString(path);
  EXPECT_TRUE(bytes.ok());
  return *bytes;
}

std::vector<std::string> ReadAll(std::string_view contents, Status* status,
                                 bool* torn) {
  wal::LogReader reader(contents);
  std::vector<std::string> records;
  std::string record;
  while (reader.ReadRecord(&record)) records.push_back(record);
  *status = reader.status();
  *torn = reader.torn_tail();
  return records;
}

TEST(Crc32cTest, KnownVectorsAndMasking) {
  // The Castagnoli check value for "123456789".
  EXPECT_EQ(Crc32c("123456789"), 0xe3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  uint32_t crc = Crc32c("some bytes");
  EXPECT_NE(Crc32cMask(crc), crc);
  EXPECT_EQ(Crc32cUnmask(Crc32cMask(crc)), crc);
  // Incremental == one-shot.
  std::string all = "hello world";
  EXPECT_EQ(Crc32cExtend(Crc32c(all.data(), 5), all.data() + 5, all.size() - 5),
            Crc32c(all));
}

TEST(WalLogTest, RoundTripSmallRecords) {
  std::vector<std::string> payloads = {"", "a", "hello", std::string(100, 'x')};
  std::string contents = WriteLog(payloads, "wal_small");
  Status status;
  bool torn = false;
  EXPECT_EQ(ReadAll(contents, &status, &torn), payloads);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_FALSE(torn);
}

TEST(WalLogTest, RoundTripBlockBoundaries) {
  // Payloads chosen to land on every fragmentation edge: exactly one
  // block, one byte less/more, several blocks, and a zero-length record
  // written when the leftover space is smaller than a header.
  const size_t full = wal::kBlockSize - wal::kHeaderSize;
  std::vector<std::string> payloads = {
      std::string(full, 'a'),      std::string(full - 1, 'b'),
      std::string(full + 1, 'c'),  std::string(3 * wal::kBlockSize, 'd'),
      std::string(full - 6, 'e'),  // leaves 6 bytes: trailer pad path
      "",
      std::string(17, 'f'),
  };
  std::string contents = WriteLog(payloads, "wal_blocks");
  Status status;
  bool torn = false;
  std::vector<std::string> records = ReadAll(contents, &status, &torn);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_FALSE(torn);
  ASSERT_EQ(records.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(records[i], payloads[i]) << "record " << i;
  }
}

TEST(WalLogTest, TruncationAlwaysYieldsCleanPrefix) {
  // Every possible truncation point must give an OK status and a strict
  // prefix of the written records — truncation is a crash artifact, never
  // corruption. Spans a block boundary so fragmented records are cut too.
  std::vector<std::string> payloads;
  for (int i = 0; i < 6; ++i) {
    payloads.push_back(std::string(11000 + 700 * i, static_cast<char>('a' + i)));
  }
  std::string contents = WriteLog(payloads, "wal_trunc");
  for (size_t cut = 0; cut < contents.size(); cut += 209) {
    Status status;
    bool torn = false;
    std::vector<std::string> records =
        ReadAll(std::string_view(contents.data(), cut), &status, &torn);
    ASSERT_TRUE(status.ok())
        << "cut=" << cut << " status=" << status.ToString();
    ASSERT_LE(records.size(), payloads.size());
    for (size_t i = 0; i < records.size(); ++i) {
      ASSERT_EQ(records[i], payloads[i]) << "cut=" << cut << " record " << i;
    }
  }
}

TEST(WalLogTest, TruncationMidRecordSetsTornTail) {
  std::string contents = WriteLog({"first record", "second record"},
                                  "wal_torn");
  // Cut inside the second record's payload (past its 7-byte header).
  size_t cut = contents.size() - 3;
  Status status;
  bool torn = false;
  std::vector<std::string> records =
      ReadAll(std::string_view(contents.data(), cut), &status, &torn);
  EXPECT_TRUE(status.ok());
  EXPECT_TRUE(torn);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "first record");
}

TEST(WalLogTest, ZeroFilledTailIsTornNotCorrupt) {
  // Filesystems can materialize zeros past the last durable write after a
  // crash; a zero tail is a clean recovery point.
  std::string contents = WriteLog({"only record"}, "wal_zeros");
  contents.append(512, '\0');
  Status status;
  bool torn = false;
  std::vector<std::string> records = ReadAll(contents, &status, &torn);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(torn);
  ASSERT_EQ(records.size(), 1u);
}

TEST(WalLogTest, PayloadFlipIsCorruption) {
  std::string contents = WriteLog({"first record", "second record"},
                                  "wal_flip");
  // Flip a payload byte of the first record: fully-present-but-wrong
  // bytes must be Corruption, and nothing after them may be trusted.
  std::string mutated = contents;
  mutated[wal::kHeaderSize + 3] ^= 0x40;
  Status status;
  bool torn = false;
  std::vector<std::string> records = ReadAll(mutated, &status, &torn);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  EXPECT_EQ(records.size(), 0u);
}

TEST(WalLogTest, MutationSweepNeverCrashes) {
  // Systematic single-byte flips across the whole log: every mutation
  // must yield either typed Corruption or an OK prefix read — never a
  // crash, hang, or bogus record accepted as one of the originals with
  // different bytes.
  std::vector<std::string> payloads = {std::string(600, 'p'),
                                       std::string(600, 'q'),
                                       std::string(600, 'r')};
  std::string contents = WriteLog(payloads, "wal_sweep");
  for (size_t pos = 0; pos < contents.size(); pos += 13) {
    std::string mutated = contents;
    mutated[pos] ^= 0x01;
    Status status;
    bool torn = false;
    std::vector<std::string> records = ReadAll(mutated, &status, &torn);
    // Every record that was read passed its CRC, so it must be an exact
    // prefix of the originals; the damage itself surfaces as Corruption
    // or (for a length flip in the final record) a tolerated torn tail.
    ASSERT_LE(records.size(), payloads.size()) << "pos=" << pos;
    for (size_t i = 0; i < records.size(); ++i) {
      ASSERT_EQ(records[i], payloads[i]) << "pos=" << pos;
    }
    ASSERT_TRUE(status.IsCorruption() || status.ok()) << "pos=" << pos;
    if (status.ok()) {
      ASSERT_TRUE(records.size() == payloads.size() || torn) << "pos=" << pos;
    }
  }
}

TEST(WalLogTest, NonzeroTrailerIsCorruption) {
  // Force a trailer: a record sized so < 7 bytes remain in the block.
  const size_t full = wal::kBlockSize - wal::kHeaderSize;
  std::string contents = WriteLog(
      {std::string(full - 5, 'a'), std::string(10, 'b')}, "wal_trailer");
  // The 5 bytes before the second block are zero padding; dirty one.
  std::string mutated = contents;
  mutated[wal::kBlockSize - 2] = 'X';
  Status status;
  bool torn = false;
  std::vector<std::string> records = ReadAll(mutated, &status, &torn);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  ASSERT_EQ(records.size(), 1u);  // first record precedes the damage
}

}  // namespace
}  // namespace strr
