// Raw-speed interior tests: the flat CSR adjacency view and every layout
// knob stacked on it must be bit-identical to the legacy per-segment walk.
//
//  * CsrAdjacency structure oracle (flattened lists == RoadNetwork's);
//  * timed expansion: every knob combination (flat, flat+prefetch,
//    flat+prefetch+locality) vs the legacy engine, sequential AND
//    parallel, over randomized cities and a tie-heavy uniform grid;
//  * cone expansion (Con-Index flat_interior) determinism;
//  * parallel TBS: ring-fanned verification vs sequential, through the
//    executor knobs so the wiring is covered too;
//  * SoA context pool reuse under a concurrent query x ingest hammer with
//    all layout knobs on (the TSan/ASan CI workload for this PR).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/query_executor.h"
#include "core/reachability_engine.h"
#include "index/con_index.h"
#include "query/bounding_region.h"
#include "roadnet/city_generator.h"
#include "roadnet/csr_graph.h"
#include "roadnet/expansion.h"
#include "search/expansion_context.h"
#include "search/frontier_engine.h"
#include "tests/test_util.h"
#include "util/thread_pool.h"

namespace strr {
namespace {

using testing_util::GetSharedStack;
using testing_util::MakeGridNetwork;

SpeedFn HashSpeeds(uint64_t salt) {
  return [salt](SegmentId id) {
    uint64_t h = (static_cast<uint64_t>(id) + salt) * 0x9e3779b97f4a7c15ull;
    h ^= h >> 29;
    return 4.0 + static_cast<double>(h % 1000) / 40.0;
  };
}

SpeedFn ConstantSpeed(double v) {
  return [v](SegmentId) { return v; };
}

/// The layout knob combinations under test (legacy is the oracle).
struct LayoutCase {
  const char* name;
  bool flat;
  bool prefetch;
  bool locality;
};
constexpr LayoutCase kLayouts[] = {
    {"flat", true, false, false},
    {"flat+prefetch", true, true, false},
    {"flat+prefetch+locality", true, true, true},
};

FrontierRuntime LayoutRuntime(const LayoutCase& layout, ThreadPool* pool,
                              int workers) {
  FrontierRuntime runtime;
  runtime.pool = pool;
  runtime.workers = workers;
  if (pool != nullptr) runtime.min_parallel_frontier = 1;
  runtime.flat_adjacency = layout.flat;
  runtime.prefetch = layout.prefetch;
  runtime.locality_chunking = layout.locality;
  return runtime;
}

void ExpectTimedIdentical(const RoadNetwork& net, ExpansionContext& want,
                          ExpansionContext& got, const char* tag) {
  for (SegmentId s = 0; s < net.NumSegments(); ++s) {
    ASSERT_EQ(want.Seen(s), got.Seen(s)) << tag << ": seen differs at " << s;
    if (!want.Seen(s)) continue;
    ASSERT_EQ(want.Label(s), got.Label(s)) << tag << ": label at " << s;
    ASSERT_EQ(want.Origin(s), got.Origin(s)) << tag << ": origin at " << s;
    ASSERT_EQ(want.Parent(s), got.Parent(s)) << tag << ": parent at " << s;
  }
}

// --- CSR structure ----------------------------------------------------------

TEST(CsrAdjacencyTest, FlattensNetworkListsVerbatim) {
  for (uint64_t seed : {5ull, 23ull}) {
    CityOptions copt;
    copt.grid_cols = 7;
    copt.grid_rows = 6;
    copt.seed = seed;
    auto city = GenerateCity(copt);
    ASSERT_TRUE(city.ok());
    const RoadNetwork& net = city->network;
    const CsrAdjacency* csr = net.csr();
    ASSERT_NE(csr, nullptr) << "Finalize must build the CSR view";
    ASSERT_EQ(csr->num_segments(), net.NumSegments());
    for (SegmentId s = 0; s < net.NumSegments(); ++s) {
      const std::vector<SegmentId>& out = net.OutgoingOf(s);
      std::span<const SegmentId> flat = csr->Out(s);
      ASSERT_EQ(std::vector<SegmentId>(flat.begin(), flat.end()), out)
          << "outgoing list differs at " << s;
      const std::vector<SegmentId>& nb = net.NeighborsOf(s);
      std::span<const SegmentId> fnb = csr->Neighbors(s);
      ASSERT_EQ(std::vector<SegmentId>(fnb.begin(), fnb.end()), nb)
          << "neighbor list differs at " << s;
      ASSERT_EQ(csr->length(s), net.segment(s).length);
      ASSERT_LT(csr->cell_rank(s), csr->num_cells());
    }
  }
}

// --- Timed expansion: CSR == legacy, sequential and parallel ----------------

TEST(CsrLayoutTest, TimedBitIdenticalOnRandomCities) {
  ThreadPool pool(3);
  for (uint64_t seed : {3ull, 19ull, 71ull}) {
    CityOptions copt;
    copt.grid_cols = 9;
    copt.grid_rows = 7;
    copt.seed = seed;
    auto city = GenerateCity(copt);
    ASSERT_TRUE(city.ok());
    const RoadNetwork& net = city->network;
    std::vector<SegmentId> sources{
        0, SegmentId(net.NumSegments() / 3), SegmentId(net.NumSegments() / 2),
        SegmentId(net.NumSegments() - 1)};

    FrontierEngine::TimedRequest request;
    request.sources = sources;
    request.budget = 700.0;
    request.track_origin = true;
    request.track_parent = true;
    SpeedFn speeds = HashSpeeds(seed);

    FrontierEngine legacy(net);
    ExpansionContext want;
    legacy.RunTimed(want, request, speeds);

    for (const LayoutCase& layout : kLayouts) {
      FrontierEngine seq(net, LayoutRuntime(layout, nullptr, 1));
      ExpansionContext seq_ctx;
      seq.RunTimed(seq_ctx, request, speeds);
      ExpectTimedIdentical(net, want, seq_ctx, layout.name);
      EXPECT_EQ(legacy.ReachedSorted(want), seq.ReachedSorted(seq_ctx));

      FrontierEngine par(net, LayoutRuntime(layout, &pool, 4));
      ExpansionContext par_ctx;
      SearchMetrics metrics;
      par.RunTimed(par_ctx, request, speeds, &metrics);
      ExpectTimedIdentical(net, want, par_ctx, layout.name);
      EXPECT_GT(metrics.parallel_rounds, 0u)
          << layout.name << ": fan-out never engaged";
    }
  }
}

TEST(CsrLayoutTest, TimedBitIdenticalUnderHeavyTies) {
  // Uniform grid + constant speed: maximal equal-cost ties — the worst
  // case for origin/parent determinism under reordered gathers.
  RoadNetwork net = MakeGridNetwork(9, 9, 250.0);
  ThreadPool pool(3);
  std::vector<SegmentId> sources{0, SegmentId(net.NumSegments() / 2),
                                 SegmentId(net.NumSegments() - 2)};
  FrontierEngine::TimedRequest request;
  request.sources = sources;
  request.budget = 500.0;
  request.track_origin = true;
  request.track_parent = true;
  SpeedFn speeds = ConstantSpeed(10.0);

  FrontierEngine legacy(net);
  ExpansionContext want;
  legacy.RunTimed(want, request, speeds);
  for (const LayoutCase& layout : kLayouts) {
    FrontierEngine par(net, LayoutRuntime(layout, &pool, 4));
    ExpansionContext got;
    par.RunTimed(got, request, speeds);
    ExpectTimedIdentical(net, want, got, layout.name);
  }
}

// --- Con-Index flat interior ------------------------------------------------

TEST(CsrLayoutTest, ConIndexFlatInteriorBuildsIdenticalTables) {
  auto& stack = GetSharedStack();
  const RoadNetwork& net = stack.engine->network();
  const SpeedProfile& profile = stack.engine->speed_profile();
  ConIndexOptions legacy_opt;
  legacy_opt.delta_t_seconds = 300;
  ConIndexOptions flat_opt = legacy_opt;
  flat_opt.flat_interior = true;

  auto legacy = ConIndex::Create(net, profile, legacy_opt);
  auto flat = ConIndex::Create(net, profile, flat_opt);
  ASSERT_TRUE(legacy.ok() && flat.ok());
  const int64_t tod = HMS(11);
  for (SegmentId s = 0; s < net.NumSegments(); ++s) {
    ASSERT_EQ((**legacy).Far(s, tod), (**flat).Far(s, tod))
        << "Far list differs at " << s;
    ASSERT_EQ((**legacy).Near(s, tod), (**flat).Near(s, tod))
        << "Near list differs at " << s;
  }
}

// --- Executor end to end: all knobs, sequential vs parallel -----------------

TEST(CsrLayoutTest, ExecutorLayoutKnobsMatchLegacyEndToEnd) {
  auto& stack = GetSharedStack();
  auto legacy = stack.engine->MakeExecutor({.num_threads = 1});
  auto flat_seq = stack.engine->MakeExecutor({.num_threads = 1,
                                              .interior_flat_adjacency = true,
                                              .interior_prefetch = true});
  auto flat_par = stack.engine->MakeExecutor(
      {.num_threads = 1,
       .interior_workers = 4,
       .interior_flat_adjacency = true,
       .interior_prefetch = true,
       .interior_locality_chunking = true,
       .parallel_tbs = true});

  MQuery q;
  q.locations = {stack.dataset.center,
                 {stack.dataset.center.x + 1500.0, stack.dataset.center.y},
                 {stack.dataset.center.x, stack.dataset.center.y - 1800.0}};
  q.start_tod = HMS(11);
  q.duration = 1200;
  q.prob = 0.2;
  auto plan = stack.engine->planner().PlanMQuery(q, QueryStrategy::kIndexed);
  ASSERT_TRUE(plan.ok());

  auto want = legacy->Execute(*plan);
  auto seq = flat_seq->Execute(*plan);
  auto par = flat_par->Execute(*plan);
  ASSERT_TRUE(want.ok() && seq.ok() && par.ok());
  EXPECT_EQ(want->segments, seq->segments);
  EXPECT_EQ(want->segments, par->segments);
  EXPECT_EQ(want->total_length_m, seq->total_length_m);
  EXPECT_EQ(want->total_length_m, par->total_length_m);
  EXPECT_EQ(want->stats.segments_expanded, seq->stats.segments_expanded);
  EXPECT_EQ(want->stats.segments_expanded, par->stats.segments_expanded);
  EXPECT_EQ(want->stats.segments_verified, seq->stats.segments_verified);
  EXPECT_EQ(want->stats.segments_verified, par->stats.segments_verified);
  EXPECT_GT(want->stats.segments_expanded, 0u);
}

TEST(CsrLayoutTest, ParallelTbsMatchesSequentialAcrossProbabilities) {
  // Low thresholds grow the trace-back rings (most segments fail), so the
  // ring fan-out actually engages; high thresholds exercise the
  // everything-qualifies early exit.
  auto& stack = GetSharedStack();
  auto sequential = stack.engine->MakeExecutor({.num_threads = 1});
  auto parallel = stack.engine->MakeExecutor({.num_threads = 1,
                                              .interior_workers = 4,
                                              .parallel_tbs = true});
  for (double prob : {0.05, 0.2, 0.6, 0.95}) {
    SQuery q{stack.dataset.center, HMS(11), 900, prob};
    auto plan = stack.engine->planner().PlanSQuery(q);
    ASSERT_TRUE(plan.ok());
    auto want = sequential->Execute(*plan);
    auto got = parallel->Execute(*plan);
    ASSERT_TRUE(want.ok() && got.ok());
    EXPECT_EQ(want->segments, got->segments) << "prob " << prob;
    EXPECT_EQ(want->stats.segments_verified, got->stats.segments_verified)
        << "prob " << prob;
  }
}

// --- Pool reuse under query x ingest with all knobs on ----------------------

TEST(CsrLayoutTest, PoolReuseUnderQueryIngestHammerWithFlatInterior) {
  auto& base = GetSharedStack();
  EngineOptions opt;
  opt.work_dir = testing_util::MakeTempDir("csr_hammer");
  opt.delta_t_seconds = 300;
  opt.query_threads = 2;
  opt.interior_workers = 3;
  opt.interior_flat_adjacency = true;
  opt.interior_prefetch = true;
  opt.interior_locality_chunking = true;
  opt.parallel_tbs = true;
  opt.live_ingestion = true;
  opt.live_batch_window_ms = 2;
  opt.result_cache_entries = 128;
  auto engine_or =
      ReachabilityEngine::Build(base.dataset.network, *base.dataset.store, opt);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  ReachabilityEngine& engine = **engine_or;

  SQuery q{base.dataset.center, HMS(11), 900, 0.2};
  auto plan = engine.planner().PlanSQuery(q);
  ASSERT_TRUE(plan.ok());
  auto reference = engine.executor().Execute(*plan);
  ASSERT_TRUE(reference.ok());

  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};
  std::thread feeder([&] {
    uint64_t i = 0;
    while (!stop.load()) {
      SegmentId seg = static_cast<SegmentId>(
          i % base.dataset.network.NumSegments());
      engine.ApplySpeedObservation(seg, HMS(11, static_cast<int>(i % 60)),
                                   3.0 + static_cast<double>(i % 14));
      ++i;
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> queriers;
  for (int t = 0; t < 3; ++t) {
    queriers.emplace_back([&] {
      for (int i = 0; i < 30 && ok.load(); ++i) {
        auto result = engine.executor().Execute(*plan);
        if (!result.ok() || result->segments.empty()) ok.store(false);
      }
    });
  }
  for (auto& t : queriers) t.join();
  stop.store(true);
  feeder.join();
  EXPECT_TRUE(ok.load());

  // The SoA contexts must be recycled, not reallocated per query.
  QueryExecutor::FrontDoorStats fds = engine.executor().front_door_stats();
  EXPECT_GT(fds.ctx_pool_reuses, 0u);

  auto again = engine.executor().Execute(*plan);
  ASSERT_TRUE(again.ok());
  if (again->stats.snapshot_version == reference->stats.snapshot_version) {
    EXPECT_EQ(again->segments, reference->segments);
  }
}

}  // namespace
}  // namespace strr
